"""The asyncio daemon: admission, coalescing, deadlines, drain.

Request lifecycle (one connection per request, ``Connection: close``)::

    read (408 on slow client)
      → route (404/405)
        → admission ladder (503 draining / 503 overloaded / 429 quota)
          → single-flight join (leader computes in a worker thread)
            → deadline wait (504 sheds the waiter, never the work)
              → deterministic 200 body

The deadline uses ``wait_for(shield(...))``: a timed-out waiter is
cut loose with a 504 while the leader's computation runs to completion
into the shared cache — which is exactly what keeps the cache and any
checkpoint journal consistent under cancellation (writes are atomic and
always finish; only the *response* is abandoned).

SIGTERM flips the admission controller to draining (new work is shed
with 503 + ``Retry-After``), closes the listener, waits for in-flight
requests and their worker-thread computations to finish, removes the
port file, and returns — the CLI then exits 0.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro import obs
from repro.core.chaos import ChaosInjector
from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import SingleFlight
from repro.serve.engine import ENDPOINTS, ServeEngine, request_key
from repro.serve.protocol import (
    HttpRequest,
    ProtocolError,
    canonical_body,
    error_envelope,
    render_response,
    status_for_error,
    success_envelope,
)


@dataclass
class ServeConfig:
    """Every daemon knob in one picklable bundle."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in the port file
    cache_dir: Optional[Union[str, Path]] = None
    jobs: int = 1
    retries: int = 2
    task_timeout_s: Optional[float] = None
    max_inflight: int = 8
    quota_rate_per_s: float = 8.0
    quota_burst: int = 16
    deadline_s: float = 60.0
    header_timeout_s: float = 5.0
    body_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    port_file: Optional[Union[str, Path]] = None
    record_runs: bool = False
    runs_dir: Optional[Union[str, Path]] = None
    worker_chaos: Optional[ChaosInjector] = None
    handler_chaos: Optional[ChaosInjector] = None


class EvalDaemon:
    """One serving process: engine + admission + single-flight + server."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.engine = ServeEngine(
            cache_dir=self.config.cache_dir,
            jobs=self.config.jobs,
            retries=self.config.retries,
            task_timeout_s=self.config.task_timeout_s,
            worker_chaos=self.config.worker_chaos,
            handler_chaos=self.config.handler_chaos,
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            quota_rate_per_s=self.config.quota_rate_per_s,
            quota_burst=self.config.quota_burst,
        )
        self.flights = SingleFlight()
        self.counters: Dict[str, int] = {}
        self.port: Optional[int] = None
        self.started_unix = time.time()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.config.max_inflight),
            thread_name_prefix="serve-handler")
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._open_requests = 0
        self._request_seq = 0
        self._lead_tasks: set = set()

    # -- counters ------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        """Loop-side accounting: daemon dict (for /stats) + obs mirror."""
        self.counters[name] = self.counters.get(name, 0) + amount
        obs.counter(name).add(amount)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port, limit=protocol.MAX_HEADER_BYTES)
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else None
        if self.config.port_file is not None and self.port is not None:
            path = Path(self.config.port_file)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(str(self.port), encoding="utf-8")
            os.replace(tmp, path)

    def begin_shutdown(self) -> None:
        """Start draining (loop-side; signal handlers land here)."""
        self.admission.draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def trigger_shutdown(self) -> None:
        """Thread-safe shutdown request (used by tests / embedders)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.begin_shutdown)

    async def _drain(self) -> None:
        """Stop listening, let in-flight work finish, tidy up."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while (self._open_requests > 0 or self._lead_tasks) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        # Any still-running leader computation finishes here: cache and
        # journal writes complete even when every waiter already left.
        self._executor.shutdown(wait=True)
        if self.config.port_file is not None:
            try:
                Path(self.config.port_file).unlink()
            except OSError:
                pass

    async def serve_until_shutdown(self,
                                   ready: Optional[threading.Event] = None
                                   ) -> None:
        """Start, serve until a shutdown request, drain, return."""
        await self.start()
        if ready is not None:
            ready.set()
        if threading.current_thread() is threading.main_thread():
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.begin_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self._drain()

    def run(self) -> None:
        """Blocking entry point (the CLI's ``supernpu serve``)."""
        asyncio.run(self.serve_until_shutdown())

    # -- request handling ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._open_requests += 1
        try:
            raw = await self._respond(reader, writer)
            writer.write(raw)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._open_requests -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> bytes:
        """Everything between raw bytes in and raw bytes out."""
        self._request_seq += 1
        request_id = f"{os.getpid()}-{self._request_seq}"
        base_headers = {"X-Request-Id": request_id}
        self._count("serve.requests")
        try:
            request = await protocol.read_request(
                reader, header_timeout_s=self.config.header_timeout_s,
                body_timeout_s=self.config.body_timeout_s)
        except ProtocolError as error:
            if error.status == 408:
                self._count("serve.slow_client_408")
            return render_response(
                error.status, error_envelope(error.code, str(error), error.hint),
                base_headers)

        endpoint = self._route(request)
        if endpoint is None:
            return self._route_error(request, base_headers)
        if endpoint == "health":
            return render_response(200, self._health_body(), base_headers)
        if endpoint == "stats":
            return render_response(200, self._stats_body(), base_headers)
        return await self._compute(request, endpoint, writer, base_headers)

    @staticmethod
    def _route(request: HttpRequest) -> Optional[str]:
        path = request.path.rstrip("/") or "/"
        if request.method == "GET" and path in ("/health", "/healthz"):
            return "health"
        if request.method == "GET" and path == "/stats":
            return "stats"
        if request.method == "POST" and path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
            if endpoint in ENDPOINTS:
                return endpoint
        return None

    def _route_error(self, request: HttpRequest,
                     base_headers: Dict[str, str]) -> bytes:
        known = [f"POST /v1/{e}" for e in ENDPOINTS] + \
                ["GET /health", "GET /stats"]
        if any(request.path.rstrip("/") == f"/v1/{e}" for e in ENDPOINTS) \
                or request.path.rstrip("/") in ("/health", "/stats"):
            return render_response(
                405, error_envelope("serve.method_not_allowed",
                                    f"{request.method} not allowed on "
                                    f"{request.path}",
                                    hint="; ".join(known)), base_headers)
        return render_response(
            404, error_envelope("serve.not_found",
                                f"no endpoint at {request.path}",
                                hint="; ".join(known)), base_headers)

    def _client_id(self, request: HttpRequest,
                   writer: asyncio.StreamWriter) -> str:
        explicit = request.header("x-client")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    def _deadline_s(self, request: HttpRequest) -> float:
        header = request.header("x-deadline-s")
        if header:
            try:
                requested = float(header)
            except ValueError:
                requested = self.config.deadline_s
            if requested > 0:
                return min(requested, self.config.deadline_s)
        return self.config.deadline_s

    async def _compute(self, request: HttpRequest, endpoint: str,
                       writer: asyncio.StreamWriter,
                       base_headers: Dict[str, str]) -> bytes:
        client_id = self._client_id(request, writer)
        decision = self.admission.admit(client_id)
        if not decision.admitted:
            self._count(f"serve.shed_{decision.status}")
            headers = dict(base_headers)
            headers["Retry-After"] = f"{decision.retry_after_s:.3f}"
            return render_response(
                decision.status,
                error_envelope(decision.code, decision.message,
                               hint="retry after the indicated delay"),
                headers)
        try:
            return await self._admitted(request, endpoint, base_headers)
        finally:
            self.admission.release()

    async def _admitted(self, request: HttpRequest, endpoint: str,
                        base_headers: Dict[str, str]) -> bytes:
        params = request.body or {}
        key = request_key(endpoint, params)
        future, leader = self.flights.join(key)
        headers = dict(base_headers)
        headers["X-Coalesced"] = "0" if leader else "1"
        if not leader:
            self._count("serve.coalesced")
        if leader:
            task = asyncio.ensure_future(self._lead(key, future, endpoint, params))
            self._lead_tasks.add(task)
            task.add_done_callback(self._lead_tasks.discard)
        obs.trace_instant(f"serve.{endpoint}", endpoint=endpoint,
                          coalesced=not leader)
        started = time.perf_counter()
        try:
            body, meta = await asyncio.wait_for(
                asyncio.shield(future), timeout=self._deadline_s(request))
        except asyncio.TimeoutError:
            self._count("serve.deadline_504")
            headers["Retry-After"] = "1.000"
            return render_response(
                504, error_envelope(
                    "serve.deadline",
                    f"request exceeded its {self._deadline_s(request):g}s "
                    "deadline",
                    hint="the computation continues into the cache; retry"),
                headers)
        except ReproError as error:
            self._count("serve.errors")
            return render_response(
                status_for_error(error),
                error_envelope(error.code or "error", str(error), error.hint),
                headers)
        except Exception as error:  # noqa: BLE001 - the envelope boundary
            self._count("serve.errors")
            return render_response(
                500, error_envelope("serve.handler_failure",
                                    f"handler failed: {error}"),
                headers)
        finally:
            obs.histogram("serve.request_seconds").observe(
                time.perf_counter() - started)
        self._count("serve.responses_200")
        headers.update(meta)
        self._record_run(endpoint, params)
        return render_response(200, body, headers)

    async def _lead(self, key: str, future: asyncio.Future,
                    endpoint: str, params: Dict[str, Any]) -> None:
        """Leader duty: compute in a thread, resolve the shared future."""
        assert self._loop is not None
        try:
            body, meta = await self._loop.run_in_executor(
                self._executor, self.engine.handle, endpoint, params)
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            if not future.done():
                future.set_exception(error)
                # Mark retrieved: when every waiter already shed on its
                # deadline, nobody will await this future again, and an
                # unretrieved exception would warn at GC time.
                future.exception()
        else:
            if not future.done():
                future.set_result((body, meta))
        finally:
            self.flights.forget(key)

    # -- volatile endpoints --------------------------------------------
    def _health_body(self) -> str:
        return success_envelope("health", {
            "status": "draining" if self.admission.draining else "ok",
            "inflight": self.admission.inflight,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "degraded": self.engine.degraded,
        })

    def _stats_body(self) -> str:
        data = {
            "engine": self.engine.stats_data(),
            "serve": dict(sorted(self.counters.items())),
            "admission": {
                "inflight": self.admission.inflight,
                "max_inflight": self.admission.max_inflight,
                "draining": self.admission.draining,
            },
            "coalesced_total": self.flights.coalesced_total,
        }
        return success_envelope("stats", data)

    def _record_run(self, endpoint: str, params: Dict[str, Any]) -> None:
        """Best-effort per-request registry entry (never blocks a response)."""
        if not self.config.record_runs:
            return
        from repro.obs.registry import RunRegistry, registry_disabled

        if registry_disabled():
            return
        try:
            RunRegistry(self.config.runs_dir).append(
                command=f"serve:{endpoint}",
                argv=["serve", endpoint, canonical_body(params)],
                exit_code=0)
        except Exception:
            pass


@contextmanager
def daemon_in_thread(config: Optional[ServeConfig] = None
                     ) -> Iterator[EvalDaemon]:
    """Run a daemon on a background thread for the enclosed block.

    Yields the daemon once its port is bound (``daemon.port``); always
    drains and joins on exit.  This is the harness tests use — the
    subprocess path (``supernpu serve``) is exercised by the drill.
    """
    daemon = EvalDaemon(config)
    ready = threading.Event()
    failure: Dict[str, BaseException] = {}

    def _run() -> None:
        try:
            asyncio.run(daemon.serve_until_shutdown(ready))
        except BaseException as error:  # pragma: no cover - surfaced below
            failure["error"] = error
            ready.set()

    thread = threading.Thread(target=_run, name="serve-daemon", daemon=True)
    thread.start()
    if not ready.wait(timeout=15.0):
        raise RuntimeError("daemon failed to start within 15s")
    if "error" in failure:
        raise RuntimeError(f"daemon failed to start: {failure['error']}")
    try:
        yield daemon
    finally:
        daemon.trigger_shutdown()
        thread.join(timeout=30.0)
        if "error" in failure:
            raise RuntimeError(f"daemon crashed: {failure['error']}")


__all__ = ["EvalDaemon", "ServeConfig", "daemon_in_thread"]
