"""Admission control: the drain flag, the in-flight bound, and quotas.

Decisions are taken on the event loop (single-threaded), in ladder
order — each rung maps to one structured shed:

1. **draining** — the daemon received SIGTERM and accepts nothing new
   (503, ``serve.draining``);
2. **overload** — admitted-but-unfinished requests already fill the
   bounded queue (503, ``serve.overloaded``);
3. **quota** — this client's token bucket is empty (429,
   ``serve.quota``).

Every shed carries ``Retry-After`` so well-behaved clients back off
instead of hammering; one client's sweep exhausts its own bucket long
before it can exhaust the shared in-flight bound, which is what keeps
a second client's requests flowing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError


class TokenBucket:
    """A per-client rate limiter: ``burst`` tokens refilled at ``rate_per_s``.

    ``take()`` is O(1) and lazy (tokens accrue on inspection, capped at
    the burst size); ``retry_after_s()`` reports how long until one
    token exists — the honest ``Retry-After`` value.
    """

    __slots__ = ("rate_per_s", "burst", "tokens", "updated")

    def __init__(self, rate_per_s: float, burst: int,
                 now: Optional[float] = None) -> None:
        if rate_per_s <= 0 or burst < 1:
            raise ConfigError("quota rate must be positive and burst >= 1",
                              code="config.invalid_quota",
                              rate_per_s=rate_per_s, burst=burst)
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(float(self.burst), self.tokens + elapsed * self.rate_per_s)
        self.updated = now

    def take(self, now: Optional[float] = None) -> bool:
        """Consume one token if available."""
        self._refill(time.monotonic() if now is None else now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_s(self, now: Optional[float] = None) -> float:
        """Seconds until the next token exists (0 when one already does)."""
        self._refill(time.monotonic() if now is None else now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate_per_s


@dataclass(frozen=True)
class AdmissionDecision:
    """The ladder's verdict for one request."""

    admitted: bool
    status: int = 200
    code: str = ""
    message: str = ""
    retry_after_s: float = 0.0


class AdmissionController:
    """The drain flag + bounded in-flight count + per-client buckets."""

    def __init__(self, max_inflight: int,
                 quota_rate_per_s: float, quota_burst: int,
                 drain_retry_after_s: float = 5.0) -> None:
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1",
                              code="config.invalid_admission",
                              max_inflight=max_inflight)
        self.max_inflight = max_inflight
        self.quota_rate_per_s = quota_rate_per_s
        self.quota_burst = quota_burst
        self.drain_retry_after_s = drain_retry_after_s
        self.inflight = 0
        self.draining = False
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket_for(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = self._buckets[client_id] = TokenBucket(
                self.quota_rate_per_s, self.quota_burst)
        return bucket

    def admit(self, client_id: str) -> AdmissionDecision:
        """Run the ladder; an admitted request holds one in-flight slot
        until :meth:`release` — exempt endpoints must not call this."""
        if self.draining:
            return AdmissionDecision(
                admitted=False, status=503, code="serve.draining",
                message="daemon is draining for shutdown",
                retry_after_s=self.drain_retry_after_s)
        if self.inflight >= self.max_inflight:
            return AdmissionDecision(
                admitted=False, status=503, code="serve.overloaded",
                message=f"in-flight limit of {self.max_inflight} reached",
                retry_after_s=1.0)
        bucket = self.bucket_for(client_id)
        if not bucket.take():
            return AdmissionDecision(
                admitted=False, status=429, code="serve.quota",
                message=f"client {client_id!r} exceeded its request quota",
                retry_after_s=max(0.05, bucket.retry_after_s()))
        self.inflight += 1
        return AdmissionDecision(admitted=True)

    def release(self) -> None:
        """Give one in-flight slot back (request finished, any outcome)."""
        if self.inflight > 0:
            self.inflight -= 1
