"""A raw-socket client for the daemon (and for abusing it in drills).

Deliberately *not* ``http.client``: the drill needs byte-level control
— dribbling a request out slowly to trigger the 408 shed, pinning a
client identity, setting per-request deadlines — and the responses need
to come back as exact byte strings so bitwise comparisons are honest.
"""

from __future__ import annotations

import json
import select
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.serve.protocol import split_response


@dataclass
class ClientResponse:
    """One response: status, lower-cased headers, exact body text."""

    status: int
    headers: Dict[str, str]
    body: str

    @property
    def ok(self) -> bool:
        return self.status == 200

    def json(self) -> Dict[str, Any]:
        return json.loads(self.body)

    @property
    def data(self) -> Any:
        return self.json().get("data")

    @property
    def error_code(self) -> str:
        error = self.json().get("error") or {}
        return str(error.get("code", ""))


def read_port_file(path: Union[str, Path], timeout_s: float = 15.0) -> int:
    """Poll a daemon's port file until it appears (startup handshake)."""
    deadline = time.monotonic() + timeout_s
    path = Path(path)
    while time.monotonic() < deadline:
        try:
            text = path.read_text(encoding="utf-8").strip()
        except OSError:
            text = ""
        if text:
            try:
                return int(text)
            except ValueError:
                pass
        time.sleep(0.05)
    raise ConfigError(f"no port appeared in {path} within {timeout_s:g}s",
                      code="serve.no_port_file",
                      hint="is the daemon running with --port-file?")


class ServeClient:
    """Blocking one-request-per-connection client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 client_id: Optional[str] = None,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout_s = timeout_s

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                deadline_s: Optional[float] = None,
                slow_chunk: Optional[int] = None,
                slow_delay_s: float = 0.0,
                timeout_s: Optional[float] = None) -> ClientResponse:
        """One HTTP exchange; ``slow_chunk`` dribbles the request bytes.

        ``slow_chunk=1, slow_delay_s=0.5`` writes one byte every half
        second — the misbehaving client the daemon's read timeouts exist
        to shed.
        """
        payload = b""
        if body is not None:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
        ]
        if payload:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(payload)}")
        if self.client_id:
            lines.append(f"X-Client: {self.client_id}")
        if deadline_s is not None:
            lines.append(f"X-Deadline-S: {deadline_s:g}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload

        with socket.create_connection(
                (self.host, self.port),
                timeout=timeout_s if timeout_s is not None else self.timeout_s
        ) as sock:
            if slow_chunk is None:
                sock.sendall(raw)
            else:
                for offset in range(0, len(raw), slow_chunk):
                    try:
                        sock.sendall(raw[offset:offset + slow_chunk])
                    except OSError:
                        break  # server already gave up on us; read the shed
                    # The inter-chunk delay doubles as a poll: once the
                    # server sheds (e.g. a 408) its response is readable
                    # and continuing to write would only race the reset.
                    readable, _, _ = select.select([sock], [], [], slow_delay_s)
                    if readable:
                        break
            chunks = []
            while True:
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
        status, headers, text = split_response(b"".join(chunks))
        return ClientResponse(status=status, headers=headers, body=text)

    # -- convenience verbs ---------------------------------------------
    def health(self) -> ClientResponse:
        return self.request("GET", "/health")

    def stats(self) -> ClientResponse:
        return self.request("GET", "/stats")

    def post(self, endpoint: str, params: Optional[Dict[str, Any]] = None,
             **kwargs: Any) -> ClientResponse:
        return self.request("POST", f"/v1/{endpoint}", body=params or {},
                            **kwargs)


__all__ = ["ClientResponse", "ServeClient", "read_port_file"]
