"""Single-flight coalescing of identical in-flight requests.

Two clients asking for the same content-hashed computation at the same
time should cost one computation: the first request becomes the
*leader* and owns the work; every identical request arriving before it
finishes becomes a *follower* sharing the same future.  Because bodies
are deterministic (:mod:`repro.serve.protocol`), followers receive the
byte-identical response the leader does.

The table lives on the event loop, so no locks: leaders register and
unregister via loop-side calls only.  Followers must ``shield`` the
shared future before applying their own deadline — a follower timing
out must never cancel the leader's computation out from under the
other waiters.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple


class SingleFlight:
    """The in-flight table: content key → (future, waiter count)."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.coalesced_total = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def join(self, key: str) -> Tuple[asyncio.Future, bool]:
        """(shared future, is_leader) for ``key``.

        The leader must eventually resolve the future (result or
        exception) and then call :meth:`forget` — in a ``finally``, so a
        crashed handler cannot strand followers on a forever-pending
        future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced_total += 1
            return existing, False
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return future, True

    def forget(self, key: str) -> None:
        """Drop ``key`` from the table (leader's cleanup duty).

        Late-arriving identical requests after this point start a fresh
        computation — correct, since the result is now in the cache and
        the new leader will serve a warm hit.
        """
        self._inflight.pop(key, None)
