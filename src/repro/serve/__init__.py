"""``repro.serve`` — the evaluation daemon (ROADMAP item 1).

The CLI runs one request per process; design-space exploration traffic
(SuperSNN-style estimate/simulate loops, the paper's resource-balancing
sweeps) is many small requests against a warm cache.  This package puts
a long-lived asyncio HTTP/JSON front on the existing execution engine
(``repro.api`` resolvers + :class:`repro.core.jobs.JobRunner` + the
content-addressed :class:`~repro.core.jobs.ResultCache`):

* :mod:`repro.serve.protocol` — a minimal HTTP/1.1 request/response
  layer (stdlib only) plus the deterministic JSON envelope and the
  ``repro.errors`` taxonomy → HTTP status mapping;
* :mod:`repro.serve.admission` — the load-shedding ladder: drain flag,
  bounded in-flight queue, and per-client token-bucket quotas
  (503 / 429 + ``Retry-After``);
* :mod:`repro.serve.coalesce` — single-flight coalescing of identical
  content-hashed requests (all waiters share one computation);
* :mod:`repro.serve.engine` — endpoint implementations routed through
  the job engine, with per-request runners over one shared cache, a
  daemon-level degrade latch, and handler-scope chaos injection;
* :mod:`repro.serve.daemon` — the asyncio server itself: per-request
  deadlines, slow-client timeouts, SIGTERM drain, port-file handshake;
* :mod:`repro.serve.client` — a raw-socket client (the CLI's
  ``supernpu client``) able to simulate slow writers for drills;
* :mod:`repro.serve.drill` — the chaos drill asserting every surviving
  response is bitwise-identical to a clean single-client run.

Responses are deterministic by construction: bodies contain only
content-derived data (volatile facts — request ids, coalescing, cache
temperature — travel in ``X-*`` headers), so "bitwise-identical under
chaos" is checkable with a string compare.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.serve.client import ClientResponse, ServeClient
from repro.serve.coalesce import SingleFlight
from repro.serve.daemon import EvalDaemon, ServeConfig, daemon_in_thread
from repro.serve.engine import ServeEngine
from repro.serve.protocol import (
    HttpRequest,
    error_envelope,
    render_response,
    status_for_error,
    success_envelope,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ClientResponse",
    "EvalDaemon",
    "HttpRequest",
    "ServeClient",
    "ServeConfig",
    "ServeEngine",
    "SingleFlight",
    "TokenBucket",
    "daemon_in_thread",
    "error_envelope",
    "render_response",
    "status_for_error",
    "success_envelope",
]
