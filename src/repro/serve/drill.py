"""The daemon chaos drill (and the CI smoke) — proof, not vibes.

The acceptance bar from docs/ROBUSTNESS.md: under worker kills, cache
corruption, hung handlers, and slow clients, with ≥ 2 concurrent
clients, **every non-shed response is bitwise-identical to a clean
single-client run**, every shed is a structured 429/503/504/408 with
``Retry-After`` where applicable, and SIGTERM drains without losing an
in-flight request.

Two entry points:

* :func:`run_chaos_drill` — the full in-thread drill (fault injection
  needs to share a filesystem with the daemon anyway);
* :func:`run_serve_smoke` — the CI job: boots a real ``supernpu serve``
  subprocess, bursts two clients (one over quota), asserts a 429 and N
  bitwise-stable 200s, SIGTERMs mid-flight, asserts a clean drain
  (exit 0, no orphaned cache tmp files).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.chaos import ANY_TASK, ChaosInjector, FaultSpec, corrupt_cache_entry
from repro.serve.client import ServeClient, read_port_file
from repro.serve.daemon import ServeConfig, daemon_in_thread
from repro.serve.engine import ServeEngine, request_key

#: The drill's request mix: small enough to run in seconds, varied
#: enough to cover every compute endpoint and a multi-task evaluate
#: (two workloads → a real pool fan-out under ``jobs=2``).
DRILL_REQUESTS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("estimate", {"design": "SuperNPU"}),
    ("estimate", {"design": "Baseline", "technology": "ersfq"}),
    ("simulate", {"design": "SuperNPU", "workload": "mobilenet", "batch": 1}),
    ("simulate", {"design": "Baseline", "workload": "mobilenet", "batch": 2}),
    ("evaluate", {"designs": ["SuperNPU"],
                  "workloads": ["mobilenet", "resnet50"]}),
)


class DrillFailure(AssertionError):
    """One drill invariant did not hold."""


@dataclass
class DrillReport:
    """What the drill observed (all counts are assertions' evidence)."""

    responses_200: int = 0
    matched: int = 0
    shed_429: int = 0
    shed_503: int = 0
    deadline_504: int = 0
    slow_408: int = 0
    coalesced: int = 0
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"200s: {self.responses_200} ({self.matched} bitwise-matched "
            "against the clean run)",
            f"sheds: {self.shed_429}x429 quota, {self.shed_503}x503, "
            f"{self.deadline_504}x504 deadline, {self.slow_408}x408 slow client",
            f"coalesced waiters: {self.coalesced}",
        ]
        lines.extend(self.notes)
        return "\n".join(lines)


def clean_baseline(requests: Tuple[Tuple[str, Dict[str, Any]], ...] = DRILL_REQUESTS,
                   ) -> Dict[str, str]:
    """Golden bodies from a clean, serial, uncached in-process run."""
    engine = ServeEngine(cache_dir=None, jobs=1)
    golden: Dict[str, str] = {}
    for endpoint, params in requests:
        body, _ = engine.handle(endpoint, params)
        golden[request_key(endpoint, params)] = body
    return golden


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise DrillFailure(message)


def _post_respecting_quota(client: ServeClient, endpoint: str,
                           params: Dict[str, Any], attempts: int = 20) -> Any:
    """POST, backing off per ``Retry-After`` on 429/503 — a polite client."""
    response = client.post(endpoint, params)
    for _ in range(attempts):
        if response.status not in (429, 503):
            return response
        time.sleep(float(response.headers.get("retry-after", "0.2")))
        response = client.post(endpoint, params)
    return response


def _match_or_die(report: DrillReport, golden: Dict[str, str],
                  endpoint: str, params: Dict[str, Any], body: str,
                  context: str) -> None:
    expected = golden[request_key(endpoint, params)]
    _check(body == expected,
           f"{context}: response for {endpoint} {params} diverged from the "
           f"clean run\n  clean: {expected[:200]}\n  got:   {body[:200]}")
    report.matched += 1


def run_chaos_drill(work_dir: Union[str, Path],
                    requests: Tuple[Tuple[str, Dict[str, Any]], ...] = DRILL_REQUESTS,
                    ) -> DrillReport:
    """The full drill against an in-thread daemon; raises on any violation."""
    work_dir = Path(work_dir)
    cache_dir = work_dir / "cache"
    report = DrillReport()
    golden = clean_baseline(requests)

    worker_chaos = ChaosInjector(
        work_dir / "chaos-worker",
        {ANY_TASK: FaultSpec("sigkill", times=2)})
    handler_chaos = ChaosInjector(
        work_dir / "chaos-handler",
        {"evaluate": FaultSpec("hung_handler", times=1, hang_seconds=1.0)})

    config = ServeConfig(
        cache_dir=cache_dir, jobs=2, max_inflight=16,
        quota_rate_per_s=2.0, quota_burst=3,
        deadline_s=120.0, header_timeout_s=0.6, body_timeout_s=0.6,
        worker_chaos=worker_chaos, handler_chaos=handler_chaos)

    with daemon_in_thread(config) as daemon:
        polite = ServeClient(port=daemon.port, client_id="polite")
        greedy = ServeClient(port=daemon.port, client_id="greedy")

        # 1. Hung handler + tight deadline: the first evaluate stalls 1s,
        #    the waiter sheds at 0.2s with a 504 — and the computation
        #    still lands in the cache (checked right after).
        evaluate_endpoint, evaluate_params = requests[-1]
        shed = polite.post(evaluate_endpoint, evaluate_params, deadline_s=0.2)
        _check(shed.status == 504 and shed.error_code == "serve.deadline",
               f"expected a 504 deadline shed, got {shed.status} {shed.body[:120]}")
        report.deadline_504 += 1
        retry = _post_respecting_quota(polite, evaluate_endpoint,
                                       evaluate_params)
        _check(retry.status == 200,
               f"post-504 retry failed: {retry.status} {retry.body[:200]}")
        report.responses_200 += 1
        _match_or_die(report, golden, evaluate_endpoint, evaluate_params,
                      retry.body, "after hung-handler 504")

        # 2. Concurrent mixed burst from two clients under worker-sigkill
        #    chaos (budgeted 2 kills), with a cache corruption injected
        #    mid-load.  The greedy client's quota (burst 3, 2/s) must
        #    produce at least one 429 without starving the polite one.
        def _fire(client: ServeClient, endpoint: str,
                  params: Dict[str, Any]) -> Tuple[str, Dict[str, Any], Any]:
            return endpoint, params, client.post(endpoint, params)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = []
            for round_index in range(3):
                for endpoint, params in requests:
                    futures.append(pool.submit(_fire, polite, endpoint, params))
                    futures.append(pool.submit(_fire, greedy, endpoint, params))
                if round_index == 0:
                    # Corrupt whatever the cache holds so far, under load.
                    time.sleep(0.2)
                    corrupted = _corrupt_some_cache(cache_dir)
                    report.notes.append(
                        f"corrupted {corrupted} cache entries under load")
            outcomes = [future.result() for future in futures]

        for endpoint, params, response in outcomes:
            if response.status == 200:
                report.responses_200 += 1
                if response.headers.get("x-coalesced") == "1":
                    report.coalesced += 1
                _match_or_die(report, golden, endpoint, params,
                              response.body, "concurrent burst")
            elif response.status == 429:
                _check(response.error_code == "serve.quota",
                       f"429 without serve.quota: {response.body[:120]}")
                _check("retry-after" in response.headers,
                       "429 missing Retry-After")
                report.shed_429 += 1
            elif response.status == 503:
                _check("retry-after" in response.headers,
                       "503 missing Retry-After")
                report.shed_503 += 1
            else:
                raise DrillFailure(
                    f"unexpected status {response.status} for {endpoint} "
                    f"{params}: {response.body[:200]}")
        _check(report.shed_429 >= 1,
               "the greedy client was never quota-shed (expected >= 1 429)")
        _check(report.responses_200 >= len(requests),
               f"too few 200s survived: {report.responses_200}")

        # 3. Slow client: one byte every 200 ms cannot beat a 0.6 s header
        #    timeout → 408, while a normal request right after still works.
        slow = polite.request("GET", "/health", slow_chunk=1,
                              slow_delay_s=0.2, timeout_s=30.0)
        _check(slow.status == 408 and slow.error_code == "serve.slow_client",
               f"expected 408 slow-client shed, got {slow.status}")
        report.slow_408 += 1
        _check(polite.health().ok, "daemon unhealthy after slow-client shed")

        # 4. Post-chaos convergence: one more full pass, all 200, all
        #    bitwise-identical (the kill budget is exhausted by now).
        #    Retrying per Retry-After is part of the point: the quota
        #    headers must be honest enough for a polite client to get
        #    through.
        for endpoint, params in requests:
            response = _post_respecting_quota(polite, endpoint, params)
            _check(response.status == 200,
                   f"convergence pass failed: {response.status} "
                   f"{response.body[:200]}")
            report.responses_200 += 1
            _match_or_die(report, golden, endpoint, params, response.body,
                          "convergence pass")

        stats = polite.stats()
        _check(stats.ok, f"stats endpoint failed: {stats.status}")
        report.notes.append(
            f"daemon counters: {stats.data['serve']}")

    _check(not list(cache_dir.glob("*/*.tmp.*")),
           "orphaned cache tmp files survived the drill")
    return report


def _corrupt_some_cache(cache_dir: Path, limit: int = 2) -> int:
    """Damage up to ``limit`` present cache entries (torn + garbage)."""
    from repro.core.jobs import ResultCache

    cache = ResultCache(cache_dir)
    corrupted = 0
    modes = ("truncate", "garbage")
    for path in sorted(cache_dir.glob("*/*.json")):
        if len(path.parent.name) != 2:
            continue
        corrupt_cache_entry(cache, path.stem, mode=modes[corrupted % len(modes)])
        corrupted += 1
        if corrupted >= limit:
            break
    return corrupted


# -- the CI smoke -----------------------------------------------------------

def run_serve_smoke(work_dir: Union[str, Path],
                    python: Optional[str] = None) -> DrillReport:
    """Boot a real daemon subprocess; burst, quota-shed, SIGTERM, drain."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = work_dir / "cache"
    port_file = work_dir / "daemon.port"
    report = DrillReport()
    golden = clean_baseline(DRILL_REQUESTS)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(Path(__file__).resolve().parents[2]),
                    env.get("PYTHONPATH", "")] if p)
    env.setdefault("SUPERNPU_NO_REGISTRY", "1")
    process = subprocess.Popen(
        [python or sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--port-file", str(port_file),
         "--cache-dir", str(cache_dir), "--jobs", "2",
         "--quota-rps", "2", "--quota-burst", "3"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        port = read_port_file(port_file, timeout_s=30.0)
        polite = ServeClient(port=port, client_id="polite")
        greedy = ServeClient(port=port, client_id="greedy")

        # Mixed burst: polite paced under quota, greedy bursting over it.
        with ThreadPoolExecutor(max_workers=6) as pool:
            greedy_futures = [
                pool.submit(greedy.post, endpoint, params)
                for endpoint, params in DRILL_REQUESTS
                for _ in (0, 1)
            ]
            polite_responses = []
            for endpoint, params in DRILL_REQUESTS[:3]:
                polite_responses.append((endpoint, params,
                                         polite.post(endpoint, params)))
                time.sleep(0.55)  # stay under 2 rps
            greedy_responses = [future.result() for future in greedy_futures]

        for endpoint, params, response in polite_responses:
            _check(response.status == 200,
                   f"polite client shed: {response.status} {response.body[:120]}")
            report.responses_200 += 1
            _match_or_die(report, golden, endpoint, params, response.body,
                          "smoke polite client")
        for response in greedy_responses:
            if response.status == 200:
                report.responses_200 += 1
            elif response.status == 429:
                report.shed_429 += 1
            elif response.status == 503:
                report.shed_503 += 1
        _check(report.shed_429 >= 1, "greedy client never saw a 429")

        # Bitwise stability across repeats (warm cache, same bytes).
        endpoint, params = DRILL_REQUESTS[2]
        first = polite.post(endpoint, params)
        time.sleep(0.55)
        second = polite.post(endpoint, params)
        _check(first.status == second.status == 200,
               f"stability probe shed: {first.status}/{second.status}")
        _check(first.body == second.body, "repeat responses differ bytewise")
        report.responses_200 += 2
        _match_or_die(report, golden, endpoint, params, second.body,
                      "smoke stability probe")

        # SIGTERM with one request in flight: the response must still
        # arrive, then the process must exit 0 on its own.
        time.sleep(1.0)  # let the quota bucket refill before the probe
        with ThreadPoolExecutor(max_workers=1) as pool:
            inflight = pool.submit(polite.post, "evaluate",
                                   {"designs": ["SuperNPU", "Baseline"],
                                    "workloads": ["mobilenet", "resnet50"]})
            time.sleep(0.15)
            process.send_signal(signal.SIGTERM)
            final = inflight.result(timeout=60.0)
        _check(final.status == 200,
               f"in-flight request lost to SIGTERM: {final.status} "
               f"{final.body[:120]}")
        report.responses_200 += 1
        exit_code = process.wait(timeout=60.0)
        _check(exit_code == 0, f"daemon exited {exit_code}, expected 0")
        _check(not port_file.exists(), "port file not removed on drain")
        _check(not list(cache_dir.glob("*/*.tmp.*")),
               "orphaned cache tmp files after drain")
        report.notes.append("SIGTERM drained cleanly: in-flight request "
                            "answered, exit 0, no tmp orphans")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
    return report


__all__ = ["DRILL_REQUESTS", "DrillFailure", "DrillReport", "clean_baseline",
           "run_chaos_drill", "run_serve_smoke"]
