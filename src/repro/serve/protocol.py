"""HTTP/1.1 wire format and the deterministic JSON envelope.

One request per connection (``Connection: close``), parsed directly off
the asyncio stream — no ``http.server`` machinery, so read timeouts can
bound a slow client's header *and* body phases separately, which is what
turns "client dribbles one byte per second" into a 408 instead of a
tied-up handler.

Envelopes are rendered with sorted keys and compact separators, and the
success body carries only content-derived fields, so two responses to
the same logical request are bitwise-identical regardless of worker
count, cache temperature, coalescing, or recovered faults.  Volatile
facts ride in ``X-*`` headers.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import CacheError, ConfigError, ReproError, SimulationError, WorkloadError

#: Maximum accepted request line + header block (bytes).
MAX_HEADER_BYTES = 16 * 1024
#: Maximum accepted request body (bytes) — plans and param dicts are tiny.
MAX_BODY_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ReproError):
    """A malformed or over-limit request (always a 4xx, never retried)."""

    exit_code = 2

    def __init__(self, message: str, status: int = 400, **context: Any) -> None:
        super().__init__(message, code=context.pop("code", "serve.bad_request"),
                         hint=context.pop("hint", None), context=context)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path, headers (lower-cased), JSON body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(reader: asyncio.StreamReader,
                       header_timeout_s: float,
                       body_timeout_s: float) -> HttpRequest:
    """Parse one HTTP/1.1 request off the stream, under read deadlines.

    A client that cannot deliver its header block within
    ``header_timeout_s`` (or its declared body within ``body_timeout_s``)
    raises :class:`ProtocolError` with status 408 — the slow-client shed.
    """
    try:
        raw_header = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout_s)
    except asyncio.TimeoutError:
        raise ProtocolError("request header not received in time",
                            status=408, code="serve.slow_client",
                            hint="send the full request promptly") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request header block too large",
                            status=413, code="serve.header_too_large") from None
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ProtocolError("empty request", status=400,
                                code="serve.bad_request") from None
        raise ProtocolError("connection closed mid-header", status=400,
                            code="serve.bad_request") from None
    if len(raw_header) > MAX_HEADER_BYTES:
        raise ProtocolError("request header block too large",
                            status=413, code="serve.header_too_large")

    lines = raw_header.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}",
                            status=400, code="serve.bad_request")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    body: Optional[Dict[str, Any]] = None
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length_text!r}",
                            status=400, code="serve.bad_request") from None
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES} byte limit",
                            status=413, code="serve.body_too_large")
    if length:
        try:
            raw_body = await asyncio.wait_for(
                reader.readexactly(length), timeout=body_timeout_s)
        except asyncio.TimeoutError:
            raise ProtocolError("request body not received in time",
                                status=408, code="serve.slow_client",
                                hint="send the full request promptly") from None
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body", status=400,
                                code="serve.bad_request") from None
        try:
            parsed = json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ProtocolError("request body is not valid JSON",
                                status=400, code="serve.bad_json",
                                hint="POST a JSON object") from None
        if not isinstance(parsed, dict):
            raise ProtocolError("request body must be a JSON object",
                                status=400, code="serve.bad_json")
        body = parsed
    return HttpRequest(method=method, path=path, headers=headers, body=body)


# -- envelopes --------------------------------------------------------------

def canonical_body(document: Mapping[str, Any]) -> str:
    """The one rendering of a response document (sorted, compact)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def success_envelope(endpoint: str, data: Any) -> str:
    """A deterministic 200 body: content-derived fields only."""
    return canonical_body({"ok": True, "endpoint": endpoint, "data": data})


def error_envelope(code: str, message: str,
                   hint: Optional[str] = None) -> str:
    """A structured error body mirroring the ``repro.errors`` taxonomy."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if hint:
        error["hint"] = hint
    return canonical_body({"ok": False, "error": error})


def status_for_error(error: BaseException) -> int:
    """Map a taxonomy error to its HTTP status.

    Mirrors the CLI's exit-code mapping (docs/API.md): user mistakes
    (config / workload, exit 2–3) are 400s; execution and cache failures
    (exit 4–5) are 500s; protocol errors carry their own status.
    """
    if isinstance(error, ProtocolError):
        return error.status
    if isinstance(error, (ConfigError, WorkloadError)):
        return 400
    if isinstance(error, (SimulationError, CacheError)):
        return 500
    return 500


def render_response(status: int, body: str,
                    extra_headers: Optional[Mapping[str, str]] = None,
                    ) -> bytes:
    """Serialize one complete HTTP/1.1 response (connection closing)."""
    payload = body.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


def split_response(raw: bytes) -> Tuple[int, Dict[str, str], str]:
    """Parse a raw response into (status, headers, body text) — client side."""
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ")[1])
    except (IndexError, ValueError):
        raise ProtocolError(f"malformed status line {lines[0]!r}",
                            code="serve.bad_response") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload.decode("utf-8")
