"""Endpoint implementations over the job engine.

One :class:`ServeEngine` lives for the daemon's whole life and owns the
shared :class:`~repro.core.jobs.ResultCache`; each request gets its own
:class:`~repro.core.jobs.JobRunner` over that cache.  Per-request
runners exist because the ambient-runner stack (``repro.core.jobs``'s
``use_runner``) is a plain process-global — safe for the CLI's single
thread, not for concurrent handler threads — while cache writes are
atomic and therefore safe to share.

Request resolution goes through the ``repro.api`` facade
(:func:`repro.api.design` / ``workload`` / ``library``), so the daemon
accepts exactly the design/workload/technology vocabulary the CLI does,
and bad specs raise the same taxonomy errors.

Degradation is latched daemon-wide: once any request's runner degrades
to serial (two pool deaths), every later runner is built with
``jobs=1`` — a pool that died twice under one request will keep dying
under the next, and serial execution is always correct, only slower.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro import obs
from repro.core.batching import batch_for
from repro.core.chaos import ChaosInjector
from repro.core.evaluate import evaluate_suite
from repro.core.jobs import JobRunner, ResultCache, SimTask
from repro.core.plan import execute as execute_plan, plan_by_name
from repro.core.report import estimate_record, simulation_record
from repro.core.resilience import RetryPolicy
from repro.errors import ConfigError
from repro.serve.protocol import success_envelope
from repro.simulator.power import power_report

#: Compute endpoints (path → handler suffix); health/stats live in the
#: daemon because they report admission state the engine cannot see.
ENDPOINTS = ("estimate", "simulate", "evaluate", "plan/run")


def request_key(endpoint: str, params: Dict[str, Any]) -> str:
    """Content hash of one logical request (the single-flight key).

    Canonical-JSON over the *raw* request params: two requests coalesce
    exactly when they would resolve to the same computation, and a
    malformed request hashes fine (it fails identically for every
    waiter, which is the correct shared outcome).
    """
    canonical = json.dumps({"endpoint": endpoint, "params": params},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ServeEngine:
    """Stateless-per-request computation over one shared cache."""

    def __init__(self,
                 cache_dir: Optional[Union[str, Path]] = None,
                 jobs: int = 1,
                 retries: int = 2,
                 task_timeout_s: Optional[float] = None,
                 worker_chaos: Optional[ChaosInjector] = None,
                 handler_chaos: Optional[ChaosInjector] = None) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.retry = RetryPolicy(max_retries=retries)
        self.task_timeout_s = task_timeout_s
        self.worker_chaos = worker_chaos
        self.handler_chaos = handler_chaos
        self.requests_total = 0
        self._degraded = False
        self._lock = threading.Lock()

    @property
    def degraded(self) -> bool:
        return self._degraded

    def _runner(self) -> JobRunner:
        jobs = 1 if self._degraded else self.jobs
        return JobRunner(jobs=jobs, cache=self.cache, retry=self.retry,
                         timeout_s=self.task_timeout_s, chaos=self.worker_chaos)

    def _absorb_runner(self, runner: JobRunner) -> None:
        """Latch daemon-wide serial mode if this request's pool gave up."""
        if runner.stats.degraded and not self._degraded:
            with self._lock:
                if not self._degraded:
                    self._degraded = True
                    obs.counter("serve.degraded").inc()

    # -- entry point (runs in a handler thread) ------------------------
    def handle(self, endpoint: str, params: Optional[Dict[str, Any]]
               ) -> Tuple[str, Dict[str, str]]:
        """Compute one request: (deterministic body, volatile headers)."""
        if endpoint not in ENDPOINTS:
            raise ConfigError(f"unknown endpoint {endpoint!r}; "
                              f"known: {ENDPOINTS}",
                              code="serve.unknown_endpoint", endpoint=endpoint)
        if self.handler_chaos is not None:
            self.handler_chaos.fire(endpoint)
        params = dict(params or {})
        with self._lock:
            self.requests_total += 1
        runner = self._runner()
        try:
            if endpoint == "estimate":
                body, meta = self._estimate(runner, params)
            elif endpoint == "simulate":
                body, meta = self._simulate(runner, params)
            elif endpoint == "evaluate":
                body, meta = self._evaluate(runner, params)
            else:
                body, meta = self._plan_run(runner, params)
        finally:
            self._absorb_runner(runner)
        meta.setdefault("X-Cache-Hits", str(int(runner.stats.hits)))
        meta.setdefault("X-Executed", str(int(runner.stats.executed)))
        if runner.stats.degraded or self._degraded:
            meta["X-Degraded"] = "1"
        return body, meta

    # -- per-endpoint handlers -----------------------------------------
    @staticmethod
    def _reject_unknown(params: Dict[str, Any], allowed: Tuple[str, ...],
                        endpoint: str) -> None:
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ConfigError(
                f"unknown parameter(s) {unknown} for {endpoint}; "
                f"allowed: {sorted(allowed)}",
                code="serve.bad_params", endpoint=endpoint)

    def _estimate(self, runner: JobRunner, params: Dict[str, Any]
                  ) -> Tuple[str, Dict[str, str]]:
        from repro import api

        self._reject_unknown(params, ("design", "technology"), "estimate")
        config = api.design(params.get("design", "SuperNPU"))
        library = api.library(params.get("technology", "rsfq"))
        estimate = runner.estimate(config, library)
        return success_envelope("estimate", estimate_record(estimate)), {}

    def _simulate(self, runner: JobRunner, params: Dict[str, Any]
                  ) -> Tuple[str, Dict[str, str]]:
        from repro import api

        self._reject_unknown(params, ("design", "workload", "batch",
                                      "technology"), "simulate")
        config = api.design(params.get("design", "SuperNPU"))
        network = api.workload(params.get("workload", "mobilenet"))
        library = api.library(params.get("technology", "rsfq"))
        batch = params.get("batch")
        if batch is not None and (not isinstance(batch, int) or batch < 1):
            raise ConfigError("batch must be a positive integer",
                              code="serve.bad_params", batch=batch)
        resolved = batch if batch is not None else batch_for(config, network)
        run = runner.run_one(SimTask(config, network, resolved, library))
        estimate = runner.estimate(config, library)
        record = simulation_record(run, power_report(run, estimate))
        return success_envelope("simulate", record), {}

    def _evaluate(self, runner: JobRunner, params: Dict[str, Any]
                  ) -> Tuple[str, Dict[str, str]]:
        from repro import api

        self._reject_unknown(params, ("designs", "workloads", "technology"),
                             "evaluate")
        designs = params.get("designs")
        workloads = params.get("workloads")
        if designs is not None and not isinstance(designs, list):
            raise ConfigError("designs must be a list of design specs",
                              code="serve.bad_params")
        if workloads is not None and not isinstance(workloads, list):
            raise ConfigError("workloads must be a list of workload names",
                              code="serve.bad_params")
        library = api.library(params.get("technology", "rsfq"))
        suite = evaluate_suite(
            designs=None if designs is None else [api.design(d) for d in designs],
            workloads=None if workloads is None
            else [api.workload(w) for w in workloads],
            library=library,
            runner=runner,
        )
        data = {
            "speedups": suite.speedups(),
            "designs": [d.config.name for d in suite.designs],
            "workloads": sorted(suite.tpu_runs),
            "mean_mac_per_s": {d.config.name: d.mean_mac_per_s
                               for d in suite.designs},
        }
        return success_envelope("evaluate", data), {}

    def _plan_run(self, runner: JobRunner, params: Dict[str, Any]
                  ) -> Tuple[str, Dict[str, str]]:
        self._reject_unknown(params, ("plan",), "plan/run")
        name = params.get("plan")
        if not isinstance(name, str) or not name:
            raise ConfigError("plan/run requires a plan name",
                              code="serve.bad_params",
                              hint="see 'supernpu plan list'")
        resultset = execute_plan(plan_by_name(name), runner=runner)
        # Cache temperature (points_cached / points_executed, and the
        # per-record ``cached`` flag) is volatile across otherwise-
        # identical requests, so it rides in headers / gets stripped.
        records = [{k: v for k, v in record.items() if k != "cached"}
                   for record in resultset.records()]
        data = {
            "plan": resultset.plan.name,
            "plan_hash": resultset.plan_hash,
            "points_total": resultset.points_total,
            "records": records,
        }
        meta = {
            "X-Points-Cached": str(resultset.points_cached),
            "X-Points-Executed": str(resultset.points_executed),
        }
        return success_envelope("plan/run", data), meta

    # -- introspection -------------------------------------------------
    def stats_data(self) -> Dict[str, Any]:
        """Volatile engine-side stats for the daemon's /stats endpoint."""
        data: Dict[str, Any] = {
            "requests_total": self.requests_total,
            "degraded": self._degraded,
            "jobs": 1 if self._degraded else self.jobs,
        }
        if self.cache is not None:
            cache_stats = self.cache.stats()
            data["cache"] = {
                "entries": cache_stats.entries,
                "bytes": cache_stats.bytes,
                "quarantined": cache_stats.quarantined,
                "tmp_swept": cache_stats.tmp_swept,
            }
        return data


__all__ = ["ENDPOINTS", "ServeEngine", "request_key"]
