"""Gate-level estimation layer (paper Section IV-A1).

The gate layer exposes, per library cell, the timing parameters (delay,
SetupTime, HoldTime), power figures (static power, access energy) and area
that the upper layers consume.  In the paper these come from JSIM runs over
the AIST 1.0 um cell library; here they come from the calibrated
:mod:`repro.device.cells` tables, and :mod:`repro.jsim` can re-derive wire
delays from first principles for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.device.cells import CellLibrary, SFQCell


@dataclass(frozen=True)
class GateEstimate:
    """All gate-level outputs for one cell (one row of the Fig. 10 table)."""

    name: str
    jj_count: int
    delay_ps: float
    setup_ps: float
    hold_ps: float
    static_power_uw: float
    switch_energy_aj: float
    area_um2: float

    @classmethod
    def from_cell(cls, cell: SFQCell, library: CellLibrary) -> "GateEstimate":
        return cls(
            name=cell.name,
            jj_count=cell.jj_count,
            delay_ps=cell.delay_ps,
            setup_ps=cell.setup_ps,
            hold_ps=cell.hold_ps,
            static_power_uw=cell.static_power_uw,
            switch_energy_aj=cell.switch_energy_aj,
            area_um2=cell.area_um2(library.process),
        )


def gate_table(library: CellLibrary) -> Dict[str, GateEstimate]:
    """The full gate-parameter table for ``library`` (Fig. 10 "Gate level")."""
    return {name: GateEstimate.from_cell(library[name], library) for name in library.names}
