"""SFQ-NPU estimator: gate-, microarchitecture- and architecture-level."""

from repro.estimator.gate_level import GateEstimate, gate_table
from repro.estimator.uarch_level import UnitEstimate, estimate_unit
from repro.estimator.floorplan import (
    Floorplan,
    PlacedBlock,
    floorplan,
    implied_frequency_ghz,
)
from repro.estimator.variation import (
    VariationReport,
    monte_carlo_frequency,
    perturbed_library,
)
from repro.estimator.validation import (
    REFERENCES,
    ReferenceMeasurement,
    ValidationRow,
    all_within_envelope,
    validate,
)
from repro.estimator.arch_level import (
    INTERFACE_DISTANCE_MM,
    PTL_DELAY_PS_PER_MM,
    NPUEstimate,
    ReplicatedUnit,
    build_units,
    estimate_npu,
    interface_gate_pairs,
)

__all__ = [
    "GateEstimate",
    "gate_table",
    "Floorplan",
    "PlacedBlock",
    "floorplan",
    "implied_frequency_ghz",
    "VariationReport",
    "monte_carlo_frequency",
    "perturbed_library",
    "REFERENCES",
    "ReferenceMeasurement",
    "ValidationRow",
    "all_within_envelope",
    "validate",
    "UnitEstimate",
    "estimate_unit",
    "INTERFACE_DISTANCE_MM",
    "PTL_DELAY_PS_PER_MM",
    "NPUEstimate",
    "ReplicatedUnit",
    "build_units",
    "estimate_npu",
    "interface_gate_pairs",
]
