"""Architecture-level estimation layer (paper Section IV-A3).

Integrates the microarchitecture-level unit estimates into a whole-NPU
report: clock frequency (including inter-unit interface pairs), static
power, access energies, and area (including inter-unit wiring), for a given
:class:`~repro.uarch.config.NPUConfig` and cell library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.components.base import ComponentEstimator

from repro import obs
from repro.device import cells
from repro.device.cells import CellLibrary
from repro.device.process import CMOS_28NM_UM
from repro.errors import ConfigError
from repro.timing.clocking import ClockingScheme
from repro.timing.frequency import GatePair
from repro.uarch.activation import MaxPoolUnit, ReLUUnit
from repro.uarch.buffers import IntegratedOutputBuffer, ShiftRegisterBuffer
from repro.uarch.config import NPUConfig
from repro.uarch.dau import DataAlignmentUnit
from repro.uarch.network import JTL_SPAN_MM, SystolicChain
from repro.uarch.pe import ProcessingElement
from repro.uarch.unit import GateCounts, Unit
from repro.estimator.uarch_level import UnitEstimate, estimate_unit

#: Center-to-center distance between interfacing units on the floorplan
#: (mm).  Calibrated so the inter-unit pair yields the 52.6 GHz NPU clock
#: of Table I: 6.0 ps setup + 1.3 mm * 10.01 ps/mm = 19.01 ps cycle time.
INTERFACE_DISTANCE_MM = 1.3

#: Passive-transmission-line propagation delay (ps per mm).
PTL_DELAY_PS_PER_MM = 10.01


class ReplicatedUnit(Unit):
    """``count`` copies of a unit treated as one aggregate (e.g. PE array)."""

    def __init__(self, prototype: Unit, count: int, kind: str | None = None) -> None:
        if count < 1:
            raise ValueError("replication count must be positive")
        self.prototype = prototype
        self.count = count
        self.kind = kind or f"{prototype.kind}[x{count}]"

    def gate_counts(self) -> GateCounts:
        return self.prototype.gate_counts().scaled(self.count)

    def gate_pairs(self) -> List[GatePair]:
        return self.prototype.gate_pairs()


def build_units(config: NPUConfig) -> Dict[str, Unit]:
    """Instantiate every microarchitectural unit of ``config`` (Fig. 3/19)."""
    pe = ProcessingElement(
        bits=config.data_bits,
        psum_bits=config.psum_bits,
        registers=config.registers_per_pe,
    )
    units: Dict[str, Unit] = {
        "pe_array": ReplicatedUnit(pe, config.num_pes, kind="pe-array"),
        "network": SystolicChain(
            config.pe_array_width + config.pe_array_height, config.data_bits
        ),
        "dau": DataAlignmentUnit(
            rows=config.pe_array_height,
            bits=config.data_bits,
            pe_pipeline_stages=pe.pipeline_stages,
        ),
        "ifmap_buffer": ShiftRegisterBuffer(
            config.ifmap_buffer_bytes,
            io_width=config.pe_array_height,
            entry_bits=config.data_bits,
            division=config.ifmap_division,
        ),
        "weight_buffer": ShiftRegisterBuffer(
            config.weight_buffer_bytes,
            io_width=config.pe_array_width,
            entry_bits=config.data_bits,
        ),
        "relu": ReLUUnit(lanes=config.pe_array_width, bits=config.psum_bits),
        "maxpool": MaxPoolUnit(lanes=config.pe_array_width, bits=config.data_bits),
    }
    if config.integrated_output_buffer:
        units["output_buffer"] = IntegratedOutputBuffer(
            config.output_buffer_bytes,
            io_width=config.pe_array_width,
            entry_bits=config.data_bits,
            division=config.output_division,
        )
    else:
        units["output_buffer"] = ShiftRegisterBuffer(
            config.output_buffer_bytes,
            io_width=config.pe_array_width,
            entry_bits=config.data_bits,
            division=config.output_division,
        )
        units["psum_buffer"] = ShiftRegisterBuffer(
            config.psum_buffer_bytes,
            io_width=config.pe_array_width,
            entry_bits=config.data_bits,
            division=config.output_division,
        )
    return units


def interface_gate_pairs(interface_distance_mm: float = INTERFACE_DISTANCE_MM) -> List[GatePair]:
    """Inter-unit connections that participate in the chip clock.

    The interfacing gates of two units cannot be skew-matched across the
    unit boundary, so the PTL flight time appears as residual delta_t
    (Section IV-A3: "we calculate all the inter-unit communication latency
    based on the interfacing gates' timing parameters").
    """
    residual = interface_distance_mm * PTL_DELAY_PS_PER_MM
    return [
        GatePair(
            cells.DFF,
            cells.AND,
            scheme=ClockingScheme.CONCURRENT_FLOW,
            skew_residual_ps=residual,
            label="inter-unit interface (buffer->PE array)",
        )
    ]


def _interface_wiring_counts(config: NPUConfig, interface_distance_mm: float) -> GateCounts:
    """JTL wire cells connecting the units across the floorplan."""
    lanes = 2 * config.pe_array_height + 2 * config.pe_array_width
    jtls_per_lane = math.ceil(interface_distance_mm / JTL_SPAN_MM)
    return GateCounts({cells.JTL: lanes * config.data_bits * jtls_per_lane})


@dataclass
class NPUEstimate:
    """Architecture-level estimation result for one NPU design point."""

    config: NPUConfig
    technology: str
    frequency_ghz: float
    cycle_time_ps: float
    critical_path: str
    units: Dict[str, UnitEstimate] = field(default_factory=dict)
    wiring_area_mm2: float = 0.0
    wiring_static_power_w: float = 0.0

    @property
    def static_power_w(self) -> float:
        return sum(u.static_power_w for u in self.units.values()) + self.wiring_static_power_w

    @property
    def area_mm2(self) -> float:
        """Native layout area on the library process (mm^2)."""
        return sum(u.area_mm2 for u in self.units.values()) + self.wiring_area_mm2

    @property
    def jj_count(self) -> float:
        return sum(u.jj_count for u in self.units.values())

    @property
    def peak_mac_per_s(self) -> float:
        return self.config.peak_mac_per_s(self.frequency_ghz)

    @property
    def peak_tmacs(self) -> float:
        return self.peak_mac_per_s / 1e12

    def area_mm2_scaled(self, target_feature_um: float = CMOS_28NM_UM, process=None) -> float:
        """Area re-scaled to another feature size (Table I's "(28nm)" row)."""
        from repro.device.process import AIST_10UM

        proc = process or AIST_10UM
        return self.area_mm2 * proc.area_scale_factor(target_feature_um)

    def unit_access_energy_j(self, name: str) -> float:
        try:
            return self.units[name].access_energy_j
        except KeyError:
            raise ConfigError(
                f"design {self.config.name!r} has no unit {name!r}",
                code="estimator.unknown_unit",
                hint="known units: " + ", ".join(sorted(self.units)),
                unit=name, design=self.config.name,
            ) from None

    def components(self) -> Dict[str, "ComponentEstimator"]:
        """The design's registered off-chip components, resolved by name.

        Keys are the component kinds (``"memory"``, ``"link"``); values
        come from the ``repro.components`` registry via the config's
        technology fields.  Derived on demand — not part of the
        serialized estimate payload, so cached estimates are unchanged.
        """
        from repro.components import component_by_name

        return {
            "memory": component_by_name(self.config.memory_technology,
                                        kind="memory"),
            "link": component_by_name(self.config.link_technology,
                                      kind="link"),
        }

    def off_chip_access_energy_j(self, num_bytes: float = 1.0) -> float:
        """Energy to move ``num_bytes`` off chip and back once: the mean
        memory read/write energy plus the link transfer energy, from the
        registered components."""
        parts = self.components()
        memory, link = parts["memory"], parts["link"]
        return (memory.action_energy_j("read", num_bytes / 2)
                + memory.action_energy_j("write", num_bytes / 2)
                + link.action_energy_j("transfer", num_bytes))


def estimate_npu(
    config: NPUConfig,
    library: CellLibrary,
    interface_distance_mm: float = INTERFACE_DISTANCE_MM,
) -> NPUEstimate:
    """Run the full three-layer estimation for one NPU design point."""
    with obs.trace_span(
        "estimate", design=config.name, technology=library.technology.value
    ):
        units = build_units(config)
        estimates: Dict[str, UnitEstimate] = {}
        for name, unit in units.items():
            with obs.trace_span("estimate/unit", unit=name):
                estimates[name] = estimate_unit(unit, library, name)
        obs.counter("estimator.units_estimated").add(len(estimates))

        # Chip clock: slowest of all intra-unit pairs and the inter-unit pairs.
        worst_cct = 0.0
        critical = ""
        for name, unit in units.items():
            try:
                report = unit.frequency(library)
            except ValueError:
                continue
            if report.cycle_time_ps > worst_cct:
                worst_cct = report.cycle_time_ps
                pair = report.critical_pair
                critical = f"{name}: {pair.label or f'{pair.src}->{pair.dst}'}"
        for pair in interface_gate_pairs(interface_distance_mm):
            constraint = pair.resolve(library)
            if constraint.cycle_time_ps > worst_cct:
                worst_cct = constraint.cycle_time_ps
                critical = pair.label

        wiring = _interface_wiring_counts(config, interface_distance_mm)
        obs.counter("estimator.designs_estimated").inc()
        return NPUEstimate(
            config=config,
            technology=library.technology.value,
            frequency_ghz=1e3 / worst_cct,
            cycle_time_ps=worst_cct,
            critical_path=critical,
            units=estimates,
            wiring_area_mm2=library.total_area_um2(wiring.as_dict()) * 1e-6,
            wiring_static_power_w=library.static_power_w(wiring.as_dict()),
        )
