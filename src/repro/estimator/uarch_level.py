"""Microarchitecture-level estimation layer (paper Section IV-A2).

Takes a :class:`~repro.uarch.unit.Unit`'s gate-count histogram and intra-unit
gate pairs and produces the unit's frequency, static power, access energy
and area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.device.cells import CellLibrary
from repro.timing.frequency import FrequencyReport
from repro.uarch.unit import Unit


@dataclass(frozen=True)
class UnitEstimate:
    """Frequency / power / area summary of one microarchitectural unit."""

    name: str
    kind: str
    gate_count: float
    jj_count: float
    frequency_ghz: Optional[float]
    cycle_time_ps: Optional[float]
    critical_pair: str
    static_power_w: float
    access_energy_j: float
    access_energy_clocked_j: float
    access_energy_wire_j: float
    area_mm2: float

    @property
    def has_frequency(self) -> bool:
        return self.frequency_ghz is not None


def estimate_unit(unit: Unit, library: CellLibrary, name: str | None = None) -> UnitEstimate:
    """Run the microarchitecture-level estimation for one unit.

    Units made purely of unclocked wire cells (e.g. a DFF-less network
    fragment) report no frequency, mirroring the paper's note that the NW
    unit alone has no frequency result (Section IV-A4).
    """
    counts = unit.full_gate_counts()
    frequency: Optional[FrequencyReport]
    try:
        frequency = unit.frequency(library)
    except ValueError:
        frequency = None
    critical = ""
    if frequency is not None and frequency.critical_pair is not None:
        pair = frequency.critical_pair
        critical = pair.label or f"{pair.src}->{pair.dst}"
    clocked_j, wire_j = library.access_energy_split_j(counts.as_dict())
    return UnitEstimate(
        name=name or unit.kind,
        kind=unit.kind,
        gate_count=counts.total(),
        jj_count=library.total_jj_count(counts.as_dict()),
        frequency_ghz=None if frequency is None else frequency.frequency_ghz,
        cycle_time_ps=None if frequency is None else frequency.cycle_time_ps,
        critical_pair=critical,
        static_power_w=library.static_power_w(counts.as_dict()),
        access_energy_j=library.access_energy_j(counts.as_dict()),
        access_energy_clocked_j=clocked_j,
        access_energy_wire_j=wire_j,
        area_mm2=library.total_area_um2(counts.as_dict()) * 1e-6,
    )
