"""Floorplan model: unit placement and interface adjacency (§IV-A3).

The architecture-level estimator charges inter-unit connections a fixed
interface wire (``INTERFACE_DISTANCE_MM`` = 1.3 mm of PTL, calibrated to
the 52.6 GHz clock).  That constant is only legitimate if the floorplan
keeps every interfacing pair of units *adjacent* — otherwise a design with
bigger buffers would need longer interface wires and a slower clock,
contradicting Table I's design-independent 52.6 GHz.

This module closes that loop.  It places the units in the Fig. 3/12(c)
arrangement —

```
   [ifmap buffer][DAU][ PE array ][output buffers]     (weight buffer and
                       [weight buffer / NW on top]      NW above the array)
```

— sizing each block from its estimated area, then measures every
interface's *edge gap*.  The check: all gaps are zero (the blocks touch)
for every design point, so the interface wire is the fixed
routing/drop-in allowance of the calibrated constant, not a function of
buffer capacity.  On the AIST 1.0 µm process the resulting "die" is of
course wafer-scale (hundreds of mm — the reason the paper reports 28 nm
equivalent areas); the adjacency structure is scale-invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.device.cells import CellLibrary, rsfq_library
from repro.estimator.arch_level import (
    INTERFACE_DISTANCE_MM,
    build_units,
    estimate_npu,
)
from repro.uarch.config import NPUConfig

#: Routing/driver allowance charged per interface even for touching blocks
#: (PTL launch, matching network, edge distribution) — the calibrated
#: constant of the architecture model.
ROUTING_ALLOWANCE_MM = INTERFACE_DISTANCE_MM


@dataclass(frozen=True)
class PlacedBlock:
    """One unit placed on the die (native process mm)."""

    name: str
    width_mm: float
    height_mm: float
    x_mm: float  # left edge
    y_mm: float  # bottom edge

    @property
    def right_mm(self) -> float:
        return self.x_mm + self.width_mm

    @property
    def top_mm(self) -> float:
        return self.y_mm + self.height_mm

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm


@dataclass
class Floorplan:
    """A placed NPU plus the interface edge gaps the placement implies."""

    blocks: Dict[str, PlacedBlock]
    edge_gaps_mm: Dict[str, float]

    @property
    def die_width_mm(self) -> float:
        return max(b.right_mm for b in self.blocks.values())

    @property
    def die_height_mm(self) -> float:
        return max(b.top_mm for b in self.blocks.values())

    @property
    def die_area_mm2(self) -> float:
        return self.die_width_mm * self.die_height_mm

    @property
    def packing_efficiency(self) -> float:
        """Placed block area over bounding-die area."""
        placed = sum(b.area_mm2 for b in self.blocks.values())
        return placed / self.die_area_mm2

    def interface_distance_mm(self, interface: str) -> float:
        """Edge gap plus the routing allowance — what the PTL must span."""
        return self.edge_gaps_mm[interface] + ROUTING_ALLOWANCE_MM

    @property
    def worst_interface_mm(self) -> float:
        return max(self.interface_distance_mm(name) for name in self.edge_gaps_mm)

    @property
    def all_interfaces_adjacent(self) -> bool:
        """The Table I invariant: every interfacing pair touches."""
        return all(gap < 1e-9 for gap in self.edge_gaps_mm.values())


def floorplan(config: NPUConfig, library: Optional[CellLibrary] = None) -> Floorplan:
    """Place ``config``'s units and measure interface edge gaps."""
    library = library or rsfq_library()
    units = build_units(config)
    areas = {name: unit.area_mm2(library) for name, unit in units.items()}

    # The PE array anchors the floorplan; its aspect follows the array's.
    pe_area = areas["pe_array"]
    aspect = config.pe_array_height / config.pe_array_width
    pe_height = math.sqrt(pe_area * aspect)
    pe_width = pe_area / pe_height

    blocks: Dict[str, PlacedBlock] = {}
    x = 0.0
    # Left column: ifmap buffer then DAU, full column height, abutting.
    for name in ("ifmap_buffer", "dau"):
        width = areas[name] / pe_height
        blocks[name] = PlacedBlock(name, width, pe_height, x, 0.0)
        x += width
    blocks["pe_array"] = PlacedBlock("pe_array", pe_width, pe_height, x, 0.0)
    x += pe_width

    # Right column: output-side buffers and activation units, stacked.
    right = ["output_buffer"] + (["psum_buffer"] if "psum_buffer" in areas else [])
    right += ["relu", "maxpool"]
    right_area = sum(areas[name] for name in right)
    right_width = right_area / pe_height
    y = 0.0
    for name in right:
        height = areas[name] / right_width
        blocks[name] = PlacedBlock(name, right_width, height, x, y)
        y += height

    # Weight buffer and NW unit stacked on top of the PE array.
    top_x = blocks["pe_array"].x_mm
    y = pe_height
    for name in ("weight_buffer", "network"):
        height = areas[name] / pe_width
        blocks[name] = PlacedBlock(name, pe_width, height, top_x, y)
        y += height

    def horizontal_gap(left: str, right_name: str) -> float:
        return max(0.0, blocks[right_name].x_mm - blocks[left].right_mm)

    def vertical_gap(bottom: str, top: str) -> float:
        return max(0.0, blocks[top].y_mm - blocks[bottom].top_mm)

    gaps = {
        "ifmap_buffer->dau": horizontal_gap("ifmap_buffer", "dau"),
        "dau->pe_array": horizontal_gap("dau", "pe_array"),
        "pe_array->output_buffer": horizontal_gap("pe_array", "output_buffer"),
        "weight_buffer->pe_array": vertical_gap("pe_array", "weight_buffer"),
    }
    return Floorplan(blocks=blocks, edge_gaps_mm=gaps)


def implied_frequency_ghz(
    config: NPUConfig,
    library: Optional[CellLibrary] = None,
) -> float:
    """Chip clock with the interface wire taken from the floorplan.

    With adjacent blocks this reproduces the calibrated 52.6 GHz; a
    placement that opened a gap between interfacing units would show up
    here as a slower clock.
    """
    library = library or rsfq_library()
    plan = floorplan(config, library)
    return estimate_npu(
        config, library, interface_distance_mm=plan.worst_interface_mm
    ).frequency_ghz
