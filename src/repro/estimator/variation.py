"""Timing-variation (yield) analysis of the NPU clock.

Fabrication spread perturbs every cell's timing parameters; because an SFQ
chip's clock is set by its single worst gate pair, variation eats directly
into the usable frequency.  The paper touches this risk when it rejects
aggressive clock skewing ("lowers the yield of fabrication", Section
III-A); this module quantifies it: a Monte Carlo over per-cell timing
perturbations reporting the distribution of achievable chip clocks and the
frequency that meets a target yield.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.device.cells import CellLibrary, SFQCell, rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.uarch.config import NPUConfig


def perturbed_library(
    library: CellLibrary,
    sigma: float,
    rng: np.random.Generator,
) -> CellLibrary:
    """A library whose timing parameters are jittered by N(0, sigma) rel.

    Setup, hold and delay of every cell get independent relative Gaussian
    perturbations (floored at 10% of nominal so values stay physical);
    power and area are left alone — variation analysis here targets timing
    yield only.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    cells = {}
    for name in library.names:
        cell: SFQCell = library[name]
        factors = 1.0 + sigma * rng.standard_normal(3)
        factors = np.maximum(factors, 0.1)
        cells[name] = replace(
            cell,
            delay_ps=cell.delay_ps * factors[0],
            setup_ps=cell.setup_ps * factors[1],
            hold_ps=cell.hold_ps * factors[2],
        )
    return CellLibrary(library.technology, library.process, cells)


@dataclass(frozen=True)
class VariationReport:
    """Monte Carlo outcome for one design / sigma point."""

    nominal_ghz: float
    sigma: float
    trials: int
    frequencies_ghz: "tuple[float, ...]"

    @property
    def mean_ghz(self) -> float:
        return float(np.mean(self.frequencies_ghz))

    @property
    def worst_ghz(self) -> float:
        return float(np.min(self.frequencies_ghz))

    def yield_at(self, frequency_ghz: float) -> float:
        """Fraction of trials whose chip clock reaches ``frequency_ghz``."""
        values = np.asarray(self.frequencies_ghz)
        return float(np.mean(values >= frequency_ghz))

    def frequency_at_yield(self, target_yield: float) -> float:
        """Highest clock achievable at the requested yield."""
        if not 0.0 < target_yield <= 1.0:
            raise ValueError("yield must lie in (0, 1]")
        values = np.sort(np.asarray(self.frequencies_ghz))[::-1]
        index = int(np.ceil(target_yield * len(values))) - 1
        return float(values[index])


def monte_carlo_frequency(
    config: NPUConfig,
    sigma: float = 0.05,
    trials: int = 50,
    seed: int = 1234,
    library: Optional[CellLibrary] = None,
) -> VariationReport:
    """Monte Carlo the chip clock under per-cell timing variation."""
    if trials < 1:
        raise ValueError("need at least one trial")
    library = library or rsfq_library()
    nominal = estimate_npu(config, library).frequency_ghz
    rng = np.random.default_rng(seed)
    frequencies: List[float] = []
    for _ in range(trials):
        jittered = perturbed_library(library, sigma, rng)
        frequencies.append(estimate_npu(config, jittered).frequency_ghz)
    return VariationReport(
        nominal_ghz=nominal,
        sigma=sigma,
        trials=trials,
        frequencies_ghz=tuple(frequencies),
    )
