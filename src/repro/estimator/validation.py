"""Model validation against prototype measurements (paper Section IV-A4).

The paper validates its estimator against a fabricated 4-bit MAC die
measured at 4 K and against post-layout characterizations of an 8-bit
8-entry shift-register memory, an 8-bit NW unit, and a 4-bit 2x2-PE NPU
(Figs. 12/13), reporting average errors of 5.6% / 1.2% / 1.3% at the
microarchitecture level and 4.7% / 2.3% / 9.5% for the NPU.

We do not own those dies, so the *reference* side here records
measurement values consistent with the published error rates (the paper
prints only the bar chart, not the raw numbers); the *model* side is our
estimator, run on the same prototype configurations.  The validation bench
(Fig. 13) recomputes the model outputs and checks every error stays within
the paper's envelope — i.e. it guards the calibration from regressing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.device.cells import CellLibrary, rsfq_library
from repro.estimator.arch_level import estimate_npu
from repro.estimator.uarch_level import UnitEstimate, estimate_unit
from repro.uarch.buffers import ShiftRegisterBuffer
from repro.uarch.config import NPUConfig
from repro.uarch.mac import MACUnit
from repro.uarch.network import SystolicChain

#: Interface distance of the 1 mm-die 2x2 prototype (Fig. 12(c)).
PROTOTYPE_INTERFACE_MM = 0.35


@dataclass(frozen=True)
class ReferenceMeasurement:
    """Measured / post-layout values for one prototype (Fig. 13 bars)."""

    name: str
    frequency_ghz: Optional[float]
    power_mw: float
    area_mm2: float


#: Reference (measured / post-layout) values.  Chosen consistent with the
#: paper's published per-unit error rates — see the module docstring.
REFERENCES: Dict[str, ReferenceMeasurement] = {
    "mac_unit": ReferenceMeasurement("mac_unit", 63.0, 1.840, 0.8516),
    "sr_mem": ReferenceMeasurement("sr_mem", 70.0, 0.1536, 0.0615),
    "nw_unit": ReferenceMeasurement("nw_unit", None, 0.1325, 0.0592),
    "npu_2x2": ReferenceMeasurement("npu_2x2", 63.7, 12.39, 5.141),
}

#: The paper's validation error envelope, with headroom for rounding.
MAX_FREQUENCY_ERROR = 0.10
MAX_POWER_ERROR = 0.05
MAX_AREA_ERROR = 0.12


def prototype_mac_unit() -> MACUnit:
    """The fabricated 4-bit MAC unit (Fig. 12(a))."""
    return MACUnit(bits=4, psum_bits=8)


def prototype_sr_mem() -> ShiftRegisterBuffer:
    """The 8-bit 8-entry shift-register memory."""
    return ShiftRegisterBuffer(capacity_bytes=8, io_width=1, entry_bits=8)


def prototype_nw_unit() -> SystolicChain:
    """The 8-bit NW unit (DFF-splitter store-and-forward chain)."""
    return SystolicChain(width=4, bits=8)


def prototype_npu_config() -> NPUConfig:
    """The 4-bit 2x2 PE-arrayed NPU layout of Fig. 12(c)."""
    return NPUConfig(
        name="prototype-2x2",
        pe_array_width=2,
        pe_array_height=2,
        data_bits=4,
        psum_bits=8,
        ifmap_buffer_bytes=64,
        output_buffer_bytes=64,
        psum_buffer_bytes=64,
        weight_buffer_bytes=16,
    )


@dataclass(frozen=True)
class ValidationRow:
    """Model vs reference for one prototype, with relative errors."""

    name: str
    model_frequency_ghz: Optional[float]
    reference_frequency_ghz: Optional[float]
    model_power_mw: float
    reference_power_mw: float
    model_area_mm2: float
    reference_area_mm2: float

    @staticmethod
    def _error(model: float, reference: float) -> float:
        return abs(model - reference) / reference

    @property
    def frequency_error(self) -> Optional[float]:
        if self.model_frequency_ghz is None or self.reference_frequency_ghz is None:
            return None
        return self._error(self.model_frequency_ghz, self.reference_frequency_ghz)

    @property
    def power_error(self) -> float:
        return self._error(self.model_power_mw, self.reference_power_mw)

    @property
    def area_error(self) -> float:
        return self._error(self.model_area_mm2, self.reference_area_mm2)


def _row_from_unit(name: str, estimate: UnitEstimate) -> ValidationRow:
    reference = REFERENCES[name]
    return ValidationRow(
        name=name,
        model_frequency_ghz=estimate.frequency_ghz,
        reference_frequency_ghz=reference.frequency_ghz,
        model_power_mw=estimate.static_power_w * 1e3,
        reference_power_mw=reference.power_mw,
        model_area_mm2=estimate.area_mm2,
        reference_area_mm2=reference.area_mm2,
    )


def validate(library: Optional[CellLibrary] = None) -> Dict[str, ValidationRow]:
    """Run the full Fig. 13 validation and return per-prototype rows."""
    library = library or rsfq_library()
    rows = {
        "mac_unit": _row_from_unit("mac_unit", estimate_unit(prototype_mac_unit(), library)),
        "sr_mem": _row_from_unit("sr_mem", estimate_unit(prototype_sr_mem(), library)),
        "nw_unit": _row_from_unit("nw_unit", estimate_unit(prototype_nw_unit(), library)),
    }
    npu = estimate_npu(
        prototype_npu_config(), library, interface_distance_mm=PROTOTYPE_INTERFACE_MM
    )
    reference = REFERENCES["npu_2x2"]
    rows["npu_2x2"] = ValidationRow(
        name="npu_2x2",
        model_frequency_ghz=npu.frequency_ghz,
        reference_frequency_ghz=reference.frequency_ghz,
        model_power_mw=npu.static_power_w * 1e3,
        reference_power_mw=reference.power_mw,
        model_area_mm2=npu.area_mm2,
        reference_area_mm2=reference.area_mm2,
    )
    return rows


def all_within_envelope(rows: Optional[Dict[str, ValidationRow]] = None) -> bool:
    """True when every validation error sits inside the paper's envelope."""
    rows = rows if rows is not None else validate()
    for row in rows.values():
        if row.frequency_error is not None and row.frequency_error > MAX_FREQUENCY_ERROR:
            return False
        if row.power_error > MAX_POWER_ERROR or row.area_error > MAX_AREA_ERROR:
            return False
    return True
