"""Command-line interface: ``supernpu <command>``.

Commands mirror the paper's experiments:

* ``estimate <design>``  — frequency / power / area of a design point
* ``simulate <design> <workload>`` — cycle-level run (perf + power)
* ``profile <design> <workload>`` — the same run under full observability
* ``bottleneck <design> <workload>`` — per-layer bound attribution,
  critical layers, roofline, and a simulated-cycle timeline export
* ``evaluate``           — the Fig. 23 speedup table
* ``validate``           — the Fig. 13 model validation
* ``sweep <which>``      — Figs. 20/21/22 design-space sweeps
* ``table1|table2|table3`` — the evaluation-setup and power tables
* ``plan list|show|run`` — the declarative experiment plans every
  figure/table lowers onto: inspect a plan's grids, dry-run-count its
  unique simulation tasks (and how many are already cached), or execute
  it directly through the job engine
* ``bench run|compare`` — record the ``benchmarks/`` suite into a
  schema-versioned ``BENCH_<git-sha>.json`` and compare two recordings
  with thresholded regression verdicts (nonzero exit on regression)
* ``runs list|show|diff`` — query the persistent run registry; every
  invocation is recorded there (``~/.supernpu/runs/`` by default;
  ``--runs-dir DIR`` overrides, ``--no-registry`` opts out);
  ``list --command SUBSTR`` filters by command name / argv
* ``serve`` — the long-lived evaluation daemon: HTTP/JSON endpoints
  over the job engine with admission control, per-client quotas,
  request coalescing and graceful degradation (docs/API.md); drains
  cleanly on SIGTERM
* ``client request|drill|smoke`` — talk to a running daemon, or run
  the chaos drill / CI smoke against one (docs/ROBUSTNESS.md)
* ``hotspot <command...>`` — run any other supernpu command under the
  host-time profiler (wall-clock sampling, or deterministic tracing for
  sub-millisecond commands); ``simulate``, ``evaluate``, ``plan run``
  and ``bench run`` also take ``--hotspot`` / ``--hotspot-out FILE`` /
  ``--hotspot-mode`` / ``--sample-hz`` directly.  All profiler output
  goes to stderr, so the profiled command's stdout stays
  bitwise-identical to an unprofiled run

``simulate``, ``evaluate``, ``sweep``, ``compare``, ``reproduce``,
``bottleneck`` and ``profile`` accept ``--trace-out FILE`` (Chrome
trace-event JSON, loadable in Perfetto) and ``--metrics-out FILE``
(metrics snapshot + run manifest); either flag switches the
``repro.obs`` instrumentation on for that run.  ``bottleneck`` adds
``--timeline-out FILE``: a Chrome trace whose timestamps are *simulated*
time (cycles through the design's clock).

Commands that fan out many design-point simulations (``simulate``,
``evaluate``, ``compare``, ``sweep``, ``reproduce``) accept
``--jobs N`` (parallel worker processes; default 1 = serial),
``--cache-dir DIR`` (content-addressed on-disk result cache: warm
re-runs skip simulation entirely), and ``--no-cache``.  ``supernpu
cache stats|clear --cache-dir DIR`` inspects / empties a cache.
Parallel and warm-cache results are bitwise-identical to serial cold
runs.  ``estimate``, ``simulate``, ``evaluate`` and ``compare`` accept
``--json``: one consistent machine-readable envelope
(``{"command", "design", "workload", "data", "manifest"}``).

All command logic routes through :mod:`repro.api`, the canonical typed
facade; the CLI only parses flags and formats tables.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence


def _fmt_row(cells: Iterable[object], widths: Sequence[int]) -> str:
    return "  ".join(f"{str(c):>{w}s}" for c, w in zip(cells, widths))


class _ObsSession:
    """Per-command observability lifecycle driven by the CLI flags.

    Enables ``repro.obs`` when ``--trace-out`` / ``--metrics-out`` was
    passed (or unconditionally for ``profile``), and on :meth:`finish`
    stamps a run manifest, writes the requested files, and disables +
    resets the global registry/tracer so in-process callers (tests) see
    no leakage between commands.
    """

    def __init__(self, args: argparse.Namespace, command: str, force: bool = False):
        self.command = command
        self.trace_out: Optional[str] = getattr(args, "trace_out", None)
        self.metrics_out: Optional[str] = getattr(args, "metrics_out", None)
        self.active = force or bool(self.trace_out or self.metrics_out)
        self.hotspot_out: Optional[str] = getattr(args, "hotspot_out", None)
        self.hotspot = bool(getattr(args, "hotspot", False) or self.hotspot_out)
        self._profiler = None
        self._start = time.perf_counter()
        if self.active:
            from repro import obs

            obs.reset()
            obs.enable()
        if self.hotspot:
            from repro.obs.hotspot import HotspotProfiler

            self._profiler = HotspotProfiler(
                mode=getattr(args, "hotspot_mode", None) or "sampling",
                sample_hz=getattr(args, "sample_hz", None) or 97.0,
            )
            self._profiler.start()

    def _finish_hotspot(self, phase_fractions=None):
        """Stop the profiler and report it — stderr only, never stdout.

        The command's stdout must stay bitwise-identical with and without
        ``--hotspot``; everything the profiler says rides on stderr.
        Returns the compact summary for the run registry, or None.
        """
        if self._profiler is None:
            return None
        profile = self._profiler.stop()
        self._profiler = None
        print(profile.report(phase_fractions=phase_fractions), file=sys.stderr)
        if self.hotspot_out:
            with open(self.hotspot_out, "w", encoding="utf-8") as handle:
                handle.write(profile.collapsed())
            print(f"collapsed stacks written to {self.hotspot_out}",
                  file=sys.stderr)
        return profile.summary()

    def finish(self, config=None, network=None, batch=None, technology=None,
               keep_enabled: bool = False, hotspot_phases=None, **extra):
        """Write the requested outputs; returns the manifest (or None)."""
        from repro import obs
        from repro.obs import registry as run_registry

        hotspot_summary = self._finish_hotspot(hotspot_phases)
        manifest = obs.RunManifest.capture(
            self.command,
            config=config,
            workload=network,
            batch=batch,
            technology=technology,
            wall_time_s=time.perf_counter() - self._start,
            **extra,
        )
        if not self.active:
            # Manifest capture is pure (no instrumentation needed), so the
            # run registry gets design/workload provenance even when the
            # obs runtime stayed off; counters exist only when it was on.
            staged = {"manifest": manifest.to_dict()}
            if hotspot_summary is not None:
                staged["hotspot"] = hotspot_summary
            run_registry.stage(**staged)
            return None
        if self.metrics_out:
            obs.write_metrics(self.metrics_out, manifest=manifest)
            print(f"metrics written to {self.metrics_out}")
        if self.trace_out:
            obs.write_trace(self.trace_out, manifest=manifest)
            print(f"trace written to {self.trace_out}")
        # Stage manifest + metrics for the run registry before the global
        # state is reset; main() finalizes the entry with exit code and
        # wall time once the command returns.
        staged = {"manifest": manifest.to_dict(),
                  "metrics": obs.metrics().snapshot()}
        if hotspot_summary is not None:
            staged["hotspot"] = hotspot_summary
        run_registry.stage(**staged)
        if not keep_enabled:
            obs.disable()
            obs.reset()
        return manifest


def _resolve_design(args: argparse.Namespace):
    """One resolver for every design-taking command.

    ``--config-file`` wins when given; otherwise the positional design
    goes through :func:`repro.api.design`, which accepts both named
    design points and paths to JSON config files.
    """
    from repro import api

    if getattr(args, "config_file", None):
        config = api.design(args.config_file)
    else:
        config = api.design(args.design)
    # Component-technology overrides (commands with the flags only);
    # with_updates re-validates the names against the registry.
    overrides = {}
    if getattr(args, "memory_technology", None):
        overrides["memory_technology"] = args.memory_technology
    if getattr(args, "link_technology", None):
        overrides["link_technology"] = args.link_technology
    if overrides:
        config = config.with_updates(**overrides)
    return config


@contextmanager
def _jobs_session(args: argparse.Namespace):
    """Install the job runner the command's --jobs/--cache-dir flags ask for.

    On exit, prints a one-line cache summary when a cache was in play, so
    warm runs visibly report their hit rate.  When a cache directory is
    given, a checkpoint journal lives beside it
    (``<cache>/checkpoints/<command>.journal``) so a killed run resumes.
    """
    from pathlib import Path

    from repro.core import jobs
    from repro.core.resilience import RetryPolicy

    workers = getattr(args, "jobs", None) or 1
    cache_dir = None
    if not getattr(args, "no_cache", False):
        cache_dir = getattr(args, "cache_dir", None)
    checkpoint_path = None
    if cache_dir is not None and getattr(args, "command", None):
        checkpoint_path = (Path(cache_dir).expanduser() / "checkpoints"
                           / f"{args.command}.journal")
    retry = RetryPolicy(max_retries=getattr(args, "retries", 2))
    timeout_s = getattr(args, "task_timeout", None)
    # Live progress goes to stderr only, so sweep stdout (tables, JSON
    # envelopes) stays bitwise-identical with progress on or off.
    from repro.obs.progress import auto_reporter

    reporter = auto_reporter(getattr(args, "progress", None))
    # Summary lines go to stderr under --json so stdout stays one document.
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    with jobs.session(jobs=workers, cache_dir=cache_dir, retry=retry,
                      timeout_s=timeout_s, checkpoint_path=checkpoint_path,
                      progress=reporter) as runner:
        yield runner
        if runner.cache is not None:
            print(f"cache [{runner.cache.root}]: {runner.stats.describe()}",
                  file=stream)
        if workers > 1 and runner.stats.elapsed_seconds > 0:
            print(f"jobs: {workers} workers, "
                  f"{runner.stats.parallel_speedup:.2f}x aggregate-sim-time speedup",
                  file=stream)
        stats = runner.stats
        if stats.tasks > 1:
            # One-line sweep summary, always on stderr (satellite of the
            # progress stream; never part of a command's stdout contract).
            print(f"summary: {stats.tasks} tasks ({stats.executed} run, "
                  f"{stats.hits} cached, {stats.retries} retried), "
                  f"{stats.elapsed_seconds:.1f}s wall, "
                  f"{100 * stats.hit_rate:.0f}% cache hit-rate",
                  file=sys.stderr)


def _print_envelope(command: str, data, *, config=None, network=None,
                    batch=None, technology=None, **extra) -> None:
    """The one JSON result envelope shared by every --json command."""
    import json

    from repro import obs

    manifest = obs.RunManifest.capture(
        command, config=config, workload=network, batch=batch,
        technology=technology, **extra,
    )
    document = {
        "command": command,
        "design": getattr(config, "name", None),
        "workload": getattr(network, "name", None),
        "data": data,
        "manifest": manifest.to_dict(),
    }
    print(json.dumps(document, indent=2, sort_keys=True))


def cmd_estimate(args: argparse.Namespace) -> int:
    from repro import api

    config = _resolve_design(args)
    library = api.library(args.technology)
    est = api.estimate(config, technology=library)
    if args.json:
        from repro.core.report import estimate_record

        _print_envelope("estimate", estimate_record(est), config=config,
                        technology=args.technology)
        return 0
    print(f"design          : {config.name} ({library.technology.value})")
    print(f"frequency       : {est.frequency_ghz:.2f} GHz  (critical: {est.critical_path})")
    print(f"peak throughput : {est.peak_tmacs:.0f} TMAC/s")
    print(f"static power    : {est.static_power_w:.2f} W")
    print(f"area (native)   : {est.area_mm2:.0f} mm^2")
    print(f"area (28nm eq.) : {est.area_mm2_scaled():.0f} mm^2")
    for name, unit in est.units.items():
        freq = "-" if unit.frequency_ghz is None else f"{unit.frequency_ghz:6.1f} GHz"
        print(
            f"  {name:14s} {freq:>12s}  {unit.static_power_w:9.2f} W  "
            f"{unit.area_mm2 * 0.028**2 / 1:9.1f} mm^2(28nm)"
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro import api
    from repro.simulator.power import power_report

    config = _resolve_design(args)
    network = api.workload(args.workload)
    session = _ObsSession(args, "simulate")
    with _jobs_session(args):
        library = api.library(args.technology)
        estimate = api.estimate(config, technology=library)
        run = api.simulate(config, network, batch=args.batch, technology=library)
        power = power_report(run, estimate)
        breakdown = run.cycle_breakdown()
        hotspot_phases = None
        if session.hotspot:
            # Join host self-time with the run's simulated-cycle phase
            # attribution so the report answers "which loop models the
            # phase that dominates simulated time".  Raw per-phase
            # fractions; the report groups them into compute /
            # preparation / dram itself.
            from repro.simulator.attribution import attribute

            hotspot_phases = dict(attribute(run).summary_fractions)
        if args.json:
            from repro.core.report import simulation_record

            _print_envelope("simulate", simulation_record(run, power),
                            config=config, network=network, batch=run.batch,
                            technology=args.technology)
            session.finish(config=config, network=network, batch=run.batch,
                           technology=args.technology,
                           hotspot_phases=hotspot_phases)
            return 0
        print(f"{config.name} running {network.name} (batch {run.batch})")
        print(f"  cycles      : {run.total_cycles:,}")
        print(f"  latency     : {run.latency_s * 1e6:.1f} us")
        print(f"  throughput  : {run.tmacs:.2f} TMAC/s")
        print(f"  PE util     : {100 * run.pe_utilization(estimate.peak_mac_per_s):.2f} %")
        print(
            "  breakdown   : "
            f"prep {100 * breakdown['preparation']:.1f}% / "
            f"compute {100 * breakdown['computation']:.1f}% / "
            f"memory {100 * breakdown['memory']:.1f}%"
        )
        print(f"  chip power  : {power.total_w:.2f} W "
              f"(static {power.static_w:.2f} + dynamic {power.dynamic_w:.2f})")
        session.finish(config=config, network=network, batch=run.batch,
                       technology=args.technology,
                       hotspot_phases=hotspot_phases)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro import api

    session = _ObsSession(args, "evaluate")
    with _jobs_session(args):
        suite = api.evaluate()
        speedups = suite.speedups()
        workloads = list(suite.tpu_runs) + ["Average"]
        if args.json:
            _print_envelope("evaluate", {"speedups": speedups,
                                         "workloads": workloads},
                            suite="fig23")
            session.finish(suite="fig23")
            return 0
        widths = [14] + [10] * len(workloads)
        print(_fmt_row(["design (vs TPU)"] + workloads, widths))
        for design, row in speedups.items():
            print(_fmt_row([design] + [f"{row[w]:.2f}x" for w in workloads], widths))
        session.finish(suite="fig23")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.estimator.validation import all_within_envelope, validate

    rows = validate()
    widths = [10, 22, 18, 18]
    print(_fmt_row(["unit", "freq (model/ref GHz)", "power err", "area err"], widths))
    for name, row in rows.items():
        if row.model_frequency_ghz is None or row.reference_frequency_ghz is None:
            freq = "-"
        else:
            freq = f"{row.model_frequency_ghz:.1f}/{row.reference_frequency_ghz:.1f}"
        print(
            _fmt_row(
                [
                    name,
                    freq,
                    f"{100 * row.power_error:.1f}%",
                    f"{100 * row.area_error:.1f}%",
                ],
                widths,
            )
        )
    ok = all_within_envelope(rows)
    print("validation:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.optimizer import buffer_sweep, register_sweep, resource_sweep

    session = _ObsSession(args, "sweep")
    with _jobs_session(args):
        if args.plot:
            from repro.core.plotting import sweep_chart

            if args.which == "buffers":
                print(sweep_chart(buffer_sweep(), "max_batch"))
            elif args.which == "resources":
                print(sweep_chart(resource_sweep(), "max_batch_added_buffer"))
            else:
                for width, rows in register_sweep().items():
                    print(f"width {width}:")
                    print(sweep_chart(rows, "speedup"))
            session.finish(which=args.which, plot=True)
            return 0

        if args.which == "buffers":
            for point in buffer_sweep():
                m = point.metrics
                print(
                    f"{point.label:26s} single={m['single_batch']:7.2f}x "
                    f"max={m['max_batch']:7.2f}x area={m['area']:5.2f}x"
                )
        elif args.which == "resources":
            for point in resource_sweep():
                m = point.metrics
                print(
                    f"{point.label:14s} fixed={m['max_batch_fixed_buffer']:7.2f}x "
                    f"added={m['max_batch_added_buffer']:7.2f}x "
                    f"intensity={m['intensity']:9.0f}"
                )
        else:
            for width, rows in register_sweep().items():
                for point in rows:
                    print(f"{point.label:22s} speedup={point.metrics['speedup']:7.2f}x")
        session.finish(which=args.which)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """One ``simulate`` run under full observability: span tree + metrics."""
    from repro import obs
    from repro.core.batching import batch_for
    from repro.device.cells import Technology, library_for
    from repro.estimator.arch_level import estimate_npu
    from repro.simulator.engine import simulate
    from repro.workloads.models import by_name

    config = _resolve_design(args)
    network = by_name(args.workload)
    session = _ObsSession(args, "profile", force=True)
    library = library_for(Technology(args.technology))
    estimate = estimate_npu(config, library)
    batch = args.batch or batch_for(config, network)
    run = simulate(config, network, batch=batch, estimate=estimate)

    print(f"profile: {config.name} running {network.name} "
          f"(batch {batch}, {run.total_cycles:,} cycles)")
    print()
    print(obs.tracer().summary_table())
    snapshot = obs.metrics().snapshot()
    print()
    print("counters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name:32s} {value:>16,}")
    print("timers:")
    for name, summary in snapshot["histograms"].items():
        print(f"  {name:32s} count={summary['count']:<6d} "
              f"mean={summary['mean']:.6f} total={summary['sum']:.6f} "
              f"p50={summary['p50']:.6f} p95={summary['p95']:.6f} "
              f"p99={summary['p99']:.6f}")
    manifest = session.finish(config=config, network=network, batch=batch,
                              technology=args.technology)
    print()
    print("manifest:")
    print(manifest.describe())
    return 0


def cmd_bottleneck(args: argparse.Namespace) -> int:
    """Per-layer bound attribution, critical layers, roofline, timeline."""
    import json

    from repro import obs
    from repro.core.batching import batch_for
    from repro.device.cells import Technology, library_for
    from repro.estimator.arch_level import estimate_npu
    from repro.simulator.attribution import (
        attribute,
        attribution_records,
        roofline,
        roofline_records,
    )
    from repro.simulator.engine import simulate
    from repro.simulator.utilization import utilization_report
    from repro.workloads.models import by_name

    config = _resolve_design(args)
    network = by_name(args.workload)
    session = _ObsSession(args, "bottleneck")
    library = library_for(Technology(args.technology))
    estimate = estimate_npu(config, library)
    batch = args.batch or batch_for(config, network)
    timeline = obs.CycleTimeline(
        estimate.frequency_ghz, design=config.name, network=network.name
    )
    run = simulate(config, network, batch=batch, estimate=estimate, timeline=timeline)
    report = attribute(run)
    roof = roofline(run, estimate.peak_mac_per_s, config.memory_bandwidth_gbps)
    util = utilization_report(run)

    if args.timeline_out:
        manifest = obs.RunManifest.capture(
            "bottleneck",
            config=config,
            workload=network,
            batch=batch,
            technology=args.technology,
        )
        obs.write_timeline(args.timeline_out, timeline, manifest=manifest)

    if args.json:
        document = {
            "design": config.name,
            "network": network.name,
            "batch": batch,
            "technology": args.technology,
            "frequency_ghz": run.frequency_ghz,
            "total_cycles": run.total_cycles,
            "simulated_us": timeline.span_us,
            "layers": attribution_records(report),
            "summary": {
                "fractions": report.summary_fractions,
                "bound_counts": report.bound_counts,
            },
            "critical_layers": [
                {
                    "layer": layer.name,
                    "share": share,
                    "bound": layer.bound,
                    "dominant_phase": layer.dominant_phase,
                }
                for layer, share in report.critical_layers(args.top)
            ],
            "roofline": {
                "compute_roof_gops": roof.compute_roof_gops,
                "bandwidth_gbytes_per_s": roof.bandwidth_gbytes_per_s,
                "ridge_macs_per_byte": roof.ridge_macs_per_byte,
                "points": roofline_records(roof),
            },
            "utilization": util.to_dict(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        session.finish(config=config, network=network, batch=batch,
                       technology=args.technology)
        return 0

    print(f"bottleneck: {config.name} running {network.name} "
          f"(batch {batch}, {run.frequency_ghz:.1f} GHz)")
    print(f"  total cycles : {run.total_cycles:,}  "
          f"({timeline.span_us:.2f} us simulated)")
    print()
    widths = [14, 14, 13, 20, 7, 7, 7]
    print(_fmt_row(
        ["layer", "cycles", "bound", "dominant", "prep%", "comp%", "dram%"], widths))
    for layer in report.layers:
        prep = sum(
            layer.fractions[p]
            for p in ("weight_load", "ifmap_prep", "psum_move", "activation_transfer")
        )
        print(_fmt_row(
            [
                layer.name,
                f"{layer.total_cycles:,}",
                layer.bound,
                layer.dominant_phase,
                f"{100 * prep:.1f}",
                f"{100 * layer.fractions['compute']:.1f}",
                f"{100 * layer.fractions['dram_stall']:.1f}",
            ],
            widths,
        ))
    print()
    counts = report.bound_counts
    print("attribution summary (cycle-weighted):")
    for phase, fraction in report.summary_fractions.items():
        print(f"  {phase:20s} {100 * fraction:6.2f} %")
    print(f"bound layers : compute {counts['compute']} / "
          f"preparation {counts['preparation']} / dram {counts['dram']}")
    print(f"busiest unit : {util.busiest_unit()} "
          f"({100 * util.per_unit[util.busiest_unit()]:.1f} % utilized)")
    print()
    print(f"critical layers (top {args.top} of {len(report.layers)}):")
    for rank, (layer, share) in enumerate(report.critical_layers(args.top), start=1):
        print(f"  {rank}. {layer.name:14s} {100 * share:5.1f}% of cycles  "
              f"{layer.bound}-bound ({layer.dominant_phase})")
    print()
    print(f"roofline (compute roof {roof.compute_roof_gops:,.0f} GOPS, "
          f"ridge {roof.ridge_macs_per_byte:.1f} MACs/byte):")
    widths = [14, 12, 14, 16, 10]
    print(_fmt_row(
        ["layer", "MACs/byte", "achieved", "attainable", "limiter"], widths))
    for point in roof.points:
        print(_fmt_row(
            [
                point.name,
                f"{point.intensity_macs_per_byte:.1f}",
                f"{point.achieved_gops:,.0f}",
                f"{point.attainable_gops:,.0f}",
                point.limiter,
            ],
            widths,
        ))
    if args.timeline_out:
        print()
        print(f"timeline written to {args.timeline_out}")
    session.finish(config=config, network=network, batch=batch,
                   technology=args.technology)
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    if args.table == "1":
        from repro.core.designs import all_designs
        from repro.device.cells import rsfq_library
        from repro.estimator.arch_level import estimate_npu

        library = rsfq_library()
        widths = [14, 8, 8, 10, 12, 12]
        print(_fmt_row(["design", "array", "regs", "freq", "peak", "area(28nm)"], widths))
        for config in all_designs():
            est = estimate_npu(config, library)
            print(
                _fmt_row(
                    [
                        config.name,
                        f"{config.pe_array_width}x{config.pe_array_height}",
                        config.registers_per_pe,
                        f"{est.frequency_ghz:.1f}GHz",
                        f"{est.peak_tmacs:.0f}TMAC/s",
                        f"{est.area_mm2_scaled():.0f}mm2",
                    ],
                    widths,
                )
            )
    elif args.table == "2":
        from repro.core.batching import PAPER_BATCHES

        workloads = list(next(iter(PAPER_BATCHES.values())))
        widths = [14] + [10] * len(workloads)
        print(_fmt_row(["design"] + workloads, widths))
        for design, row in PAPER_BATCHES.items():
            print(_fmt_row([design] + [row[w] for w in workloads], widths))
    else:
        from repro.core.evaluate import evaluate_suite, table3_rows

        suite = evaluate_suite()
        rows = table3_rows(suite)
        reference = rows[0]
        widths = [30, 12, 14, 16]
        print(_fmt_row(["configuration", "chip (W)", "wall (W)", "perf/W vs TPU"], widths))
        for row in rows:
            print(
                _fmt_row(
                    [
                        row.label,
                        f"{row.chip_power_w:.2f}",
                        f"{row.wall_power_w:.1f}",
                        f"{row.normalized_to(reference):.3f}x",
                    ],
                    widths,
                )
            )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro import api
    from repro.core.report import (
        layer_records,
        simulation_record,
        to_csv,
        to_json,
    )
    from repro.simulator.power import power_report

    config = _resolve_design(args)
    network = api.workload(args.workload)
    library = api.library(args.technology)
    estimate = api.estimate(config, technology=library)
    run = api.simulate(config, network, batch=args.batch, technology=library)
    if args.layers:
        records = layer_records(run)
        print(to_csv(records) if args.format == "csv" else to_json(records))
    else:
        record = simulation_record(run, power_report(run, estimate))
        print(to_csv([record]) if args.format == "csv" else to_json(record))
    return 0


def cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.device.cells import rsfq_library
    from repro.estimator.floorplan import floorplan, implied_frequency_ghz

    config = _resolve_design(args)
    library = rsfq_library()
    plan = floorplan(config, library)
    print(f"{config.name}: die {plan.die_width_mm:.1f} x {plan.die_height_mm:.1f} mm "
          f"(AIST 1.0 um), packing {100 * plan.packing_efficiency:.1f}%")
    widths = [16, 10, 10, 10, 10]
    print(_fmt_row(["block", "w (mm)", "h (mm)", "x", "y"], widths))
    for name, block in plan.blocks.items():
        print(_fmt_row(
            [name, f"{block.width_mm:.1f}", f"{block.height_mm:.1f}",
             f"{block.x_mm:.1f}", f"{block.y_mm:.1f}"], widths))
    print("interfaces (edge gap + routing allowance):")
    for name in plan.edge_gaps_mm:
        print(f"  {name:26s} {plan.interface_distance_mm(name):.2f} mm")
    print(f"implied clock: {implied_frequency_ghz(config, library):.1f} GHz")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    from repro.core.energy import inference_energy_table, relative_energy
    from repro.workloads.models import by_name

    network = by_name(args.workload)
    rows = inference_energy_table(network)
    rel = relative_energy(rows)
    widths = [32, 14, 16, 18, 10]
    print(_fmt_row(
        ["configuration", "images/s", "chip J/img", "wall J/img", "vs TPU"], widths))
    for row in rows:
        print(_fmt_row(
            [
                row.label,
                f"{row.images_per_s:.0f}",
                f"{row.chip_joules_per_image:.2e}",
                f"{row.wall_joules_per_image:.2e}",
                f"{rel[row.label]:.3f}x",
            ],
            widths,
        ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro import api
    from repro.core.compare import comparison_records, phase_deltas, winner

    configs = [api.design(spec) for spec in args.designs]
    workloads = args.workloads.split(",") if args.workloads else None
    session = _ObsSession(args, "compare")
    with _jobs_session(args):
        columns = api.compare(configs, workloads=workloads)
        if args.json:
            data = {"columns": comparison_records(columns),
                    "winner": winner(columns).config.name}
            if len(columns) > 1:
                data["phase_deltas"] = phase_deltas(columns)
            _print_envelope("compare", data,
                            designs=",".join(c.config.name for c in columns))
            session.finish(designs=",".join(c.config.name for c in columns))
            return 0
        _print_compare_tables(columns, winner, phase_deltas)
        session.finish(designs=",".join(c.config.name for c in columns))
    return 0


def _print_compare_tables(columns, winner, phase_deltas) -> None:
    workload_names = list(columns[0].throughput_tmacs)
    widths = [16, 8, 8, 10, 10] + [10] * len(workload_names)
    print(_fmt_row(
        ["design", "GHz", "peak", "area mm2", "mean T/s"] + workload_names, widths))
    for column in columns:
        print(_fmt_row(
            [
                column.config.name,
                f"{column.frequency_ghz:.1f}",
                f"{column.peak_tmacs:.0f}",
                f"{column.area_mm2_28nm:.0f}",
                f"{column.mean_tmacs:.1f}",
            ]
            + [f"{column.throughput_tmacs[name]:.1f}" for name in workload_names],
            widths,
        ))
    print(f"winner (mean throughput): {winner(columns).config.name}")
    if len(columns) > 1:
        print()
        print(f"cycle movement vs {columns[0].config.name} "
              "(summed over workloads; negative = fewer cycles):")
        widths = [20] + [16] * len(columns) + [16]
        header = (["phase"] + [c.config.name for c in columns]
                  + [f"delta ({columns[-1].config.name})"])
        print(_fmt_row(header, widths))
        for row in phase_deltas(columns):
            delta = row[f"{columns[-1].config.name}_delta"]
            print(_fmt_row(
                [row["phase"]]
                + [f"{row[c.config.name]:,}" for c in columns]
                + [f"{delta:+,}"],
                widths,
            ))


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.core.experiments import EXPERIMENTS, EXTENSIONS, reproduce_all

    only = args.only.split(",") if args.only else None
    session = _ObsSession(args, "reproduce")
    mark = _plan_mark()
    with _jobs_session(args):
        results = reproduce_all(
            out_dir=args.out, only=only, include_extensions=args.extensions
        )
        for name in results:
            marker = f"-> {args.out}/{name}.json" if args.out else "(in memory)"
            print(f"  {name:28s} {marker}")
        available = len(EXPERIMENTS) + (len(EXTENSIONS) if args.extensions else 0)
        print(f"{len(results)} of {available} experiments regenerated")
        session.finish(experiments=",".join(results), **_plans_since(mark))
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.analysis import duplication_report
    from repro.workloads.models import all_workloads

    widths = [12, 8, 10, 12, 14]
    print(_fmt_row(["workload", "layers", "GMACs", "weights MB", "duplication"], widths))
    for network in all_workloads():
        report = duplication_report(network)
        print(
            _fmt_row(
                [
                    network.name,
                    len(network.layers),
                    f"{network.total_macs / 1e9:.2f}",
                    f"{network.total_weight_bytes / 2**20:.1f}",
                    f"{100 * report.duplication_ratio:.1f}%",
                ],
                widths,
            )
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import api
    from repro.simulator.trace import trace_layer, trace_summary, trace_to_csv

    config = _resolve_design(args)
    network = api.workload(args.workload)
    matches = [l for l in network.layers if l.name == args.layer]
    if not matches:
        from repro.errors import UnknownWorkloadError

        names = ", ".join(l.name for l in network.layers[:12])
        raise UnknownWorkloadError(
            f"no layer {args.layer!r} in {network.name}; first layers: {names}",
            code="workload.unknown_layer", layer=args.layer, network=network.name,
        )
    events = trace_layer(matches[0], config, batch=args.batch)
    if args.format == "csv":
        print(trace_to_csv(events), end="")
    else:
        summary = trace_summary(events)
        print(f"{config.name} / {network.name} / {args.layer} (batch {args.batch})")
        for phase, cycles in summary.items():
            print(f"  {phase:14s} {cycles:>12,} cycles")
        print(f"  mappings       {events[-1].mapping_index + 1:>12,}")
    return 0


def _plans_since(mark: int) -> dict:
    """Manifest extras for every plan executed since ``mark``.

    ``mark`` is ``len(recent_plans())`` taken before the command ran; the
    delta is this command's plan executions, (name, hash) stamped.
    """
    from repro.core.plan import recent_plans

    executed = recent_plans()[mark:]
    if not executed:
        return {}
    return {"plans": [{"name": name, "hash": digest}
                      for name, digest in executed]}


def _plan_mark() -> int:
    from repro.core.plan import recent_plans

    return len(recent_plans())


def cmd_plan(args: argparse.Namespace) -> int:
    from repro import api
    from repro.errors import ConfigError

    if args.action == "list":
        names = api.plans()
        if args.json:
            plans = [
                {
                    "name": name,
                    "points": api.plan(name).num_points,
                    "description": api.plan(name).description,
                }
                for name in names
            ]
            _print_envelope("plan", {"plans": plans}, action="list")
            return 0
        widths = [24, 8]
        print(_fmt_row(["plan", "points"], widths) + "  description")
        for name in names:
            plan = api.plan(name)
            print(_fmt_row([name, plan.num_points], widths)
                  + f"  {plan.description}")
        return 0

    if not args.name:
        raise ConfigError(
            f"'plan {args.action}' needs a plan name",
            code="config.missing_plan",
            hint=f"known plans: {', '.join(api.plans())}",
        )
    plan = api.plan(args.name)

    if args.action == "show":
        lowered = plan.lower()
        unique = lowered.sim_tasks()
        estimate_points = sum(1 for p in lowered.points if p.task is None)
        cached = None
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir and not getattr(args, "no_cache", False):
            from repro.core.jobs import ResultCache

            cache = ResultCache(cache_dir)
            cached = sum(1 for key in unique if cache.path_for(key).exists())
        if args.json:
            _print_envelope("plan", {
                "name": plan.name,
                "hash": lowered.plan_hash,
                "description": plan.description,
                "points_total": len(lowered.points),
                "unique_simulations": len(unique),
                "estimate_points": estimate_points,
                "cached_simulations": cached,
                "grids": [
                    {"name": grid.name, "kind": grid.kind,
                     "points": grid.num_points}
                    for grid in plan.grids
                ],
            }, action="show", plan=plan.name)
            return 0
        print(plan.describe())
        line = (f"dry run: {len(lowered.points)} points -> "
                f"{len(unique)} unique simulations")
        if estimate_points:
            line += f" + {estimate_points} estimate points"
        if cached is not None:
            line += (f"; {cached} already cached, "
                     f"{len(unique) - cached} to execute")
        print(line)
        return 0

    # run
    session = _ObsSession(args, "plan")
    mark = _plan_mark()
    with _jobs_session(args):
        resultset = api.run_plan(plan)
        if args.json:
            _print_envelope("plan", {
                "name": plan.name,
                "hash": resultset.plan_hash,
                "points_total": resultset.points_total,
                "points_cached": resultset.points_cached,
                "points_executed": resultset.points_executed,
                "records": resultset.records(),
            }, action="run", plan=plan.name)
        else:
            print(resultset.describe())
            print(f"plan hash: {resultset.plan_hash}")
        session.finish(plan=plan.name, plan_hash=resultset.plan_hash,
                       points_total=resultset.points_total,
                       points_cached=resultset.points_cached,
                       points_executed=resultset.points_executed,
                       **_plans_since(mark))
    return 0


def cmd_components(args: argparse.Namespace) -> int:
    from repro import api
    from repro.errors import ConfigError

    if args.action == "list":
        registered = api.components(kind=args.kind)
        if args.json:
            _print_envelope(
                "components",
                {"components": [component.to_dict() for component in registered]},
                action="list")
            return 0
        widths = [16, 8, 8, 10]
        print(_fmt_row(["component", "kind", "stage", "GB/s"], widths)
              + "  description")
        for component in registered:
            bandwidth = ("inherit" if component.bandwidth_gbps is None
                         else f"{component.bandwidth_gbps:g}")
            print(_fmt_row([component.name, component.kind,
                            f"{component.stage_k:g}K", bandwidth], widths)
                  + f"  {component.description}")
        return 0

    # show
    if not args.name:
        raise ConfigError(
            "'components show' needs a component name",
            code="components.missing_name",
            hint="known components: "
                 + ", ".join(c.name for c in api.components()),
        )
    component = api.component(args.name)
    if args.json:
        _print_envelope("components", component.to_dict(), action="show",
                        component=component.name)
        return 0
    print(f"component   : {component.name} ({component.kind})")
    print(f"stage       : {component.stage_k:g} K")
    bandwidth = ("inherit (design memory_bandwidth_gbps)"
                 if component.bandwidth_gbps is None
                 else f"{component.bandwidth_gbps:g} GB/s")
    print(f"bandwidth   : {bandwidth}")
    for action in ("read", "write", "transfer", "idle"):
        if action in component.action_energy_pj_per_byte:
            print(f"  {action:9s}: "
                  f"{component.action_energy_pj_per_byte[action]:g} pJ/B")
    if component.area_mm2_per_mib:
        print(f"area        : {component.area_mm2_per_mib:g} mm^2/MiB")
    if component.idle_power_w:
        print(f"idle power  : {component.idle_power_w:g} W")
    if component.description:
        print(f"description : {component.description}")
    if component.citation:
        print(f"citation    : {component.citation}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.jobs import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cache [{cache.root}]: removed {removed} entries")
        return 0
    stats = cache.stats()
    print(f"cache [{cache.root}]")
    print(f"  entries : {stats.entries}")
    print(f"  size    : {stats.bytes / 1024:.1f} KiB")
    for kind in sorted(stats.by_kind):
        print(f"  {kind:14s}: {stats.by_kind[kind]}")
    if stats.quarantined:
        print(f"  quarantined   : {stats.quarantined}")
    return 0


def _print_bench_comparison(comparison) -> None:
    """Per-benchmark verdict table + one summary line."""
    print(f"{'benchmark':<58s} {'base ms':>10s} {'new ms':>10s} "
          f"{'ratio':>7s}  verdict")
    for delta in comparison.deltas:
        base_ms = "-" if delta.base_s is None else f"{delta.base_s * 1e3:.3f}"
        new_ms = "-" if delta.new_s is None else f"{delta.new_s * 1e3:.3f}"
        ratio = "-" if delta.ratio is None else f"{delta.ratio:.2f}x"
        print(f"{delta.name:<58s} {base_ms:>10s} {new_ms:>10s} "
              f"{ratio:>7s}  {delta.verdict}")
    print(f"bench compare [{comparison.base_sha} -> {comparison.new_sha}]: "
          f"{len(comparison.regressions)} regressions, "
          f"{len(comparison.improvements)} improvements "
          f"(threshold {comparison.threshold:g}x on min wall time)")


def cmd_bench(args: argparse.Namespace) -> int:
    """Record the benchmark suite / gate a recording against a baseline."""
    import json

    from repro.errors import ConfigError
    from repro.obs import bench

    if args.action == "run":
        hotspot_mode = None
        if args.hotspot or args.hotspot_out:
            hotspot_mode = args.hotspot_mode or "sampling"
        document = bench.run_benchmarks(
            args.subset, min_rounds=args.min_rounds, max_time_s=args.max_time,
            label=args.label, hotspot_mode=hotspot_mode,
            hotspot_hz=args.sample_hz)
        path = bench.write_document(document, path=args.out)
        if args.json:
            _print_envelope("bench", document, action="run", subset=args.subset)
        else:
            print(f"bench [{document['git_sha']}]: "
                  f"{len(document['benchmarks'])} benchmarks "
                  f"({args.subset}) -> {path}")
            for name in sorted(document["benchmarks"]):
                stats = document["benchmarks"][name]
                print(f"  {name:<58s} min {stats['min_s'] * 1e3:9.3f} ms  "
                      f"mean {stats['mean_s'] * 1e3:9.3f} ms  "
                      f"({stats['rounds']} rounds)")
        hotspot_doc = document.get("hotspot")
        if hotspot_doc:
            from repro.obs import registry as run_registry
            from repro.obs.hotspot import HotspotProfile

            profile = HotspotProfile.from_dict(hotspot_doc["profile"])
            print(profile.report(), file=sys.stderr)
            if args.hotspot_out:
                with open(args.hotspot_out, "w", encoding="utf-8") as handle:
                    handle.write(hotspot_doc.get("collapsed", ""))
                print(f"collapsed stacks written to {args.hotspot_out}",
                      file=sys.stderr)
            run_registry.stage(hotspot=hotspot_doc.get("summary"))
        return 0

    # compare: candidate vs an explicit --baseline or the newest committed one
    if not args.target:
        raise ConfigError(
            "'bench compare' needs a candidate BENCH_*.json",
            code="bench.missing_candidate",
            hint="record one with 'supernpu bench run --out FILE'",
        )
    candidate = bench.load_document(args.target)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = bench.find_baseline(exclude=[args.target])
        if baseline_path is None:
            raise ConfigError(
                "no baseline BENCH_*.json found at the repo root",
                code="bench.no_baseline",
                hint="pass --baseline FILE or commit a baseline recording",
            )
    baseline = bench.load_document(baseline_path)
    comparison = bench.compare_documents(baseline, candidate,
                                         threshold=args.threshold)
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        _print_bench_comparison(comparison)
    return 0 if comparison.ok else 1


def cmd_runs(args: argparse.Namespace) -> int:
    """Query the persistent run registry (list / show / diff)."""
    import json

    from repro.errors import ConfigError
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(getattr(args, "runs_dir", None))

    if args.action == "list":
        entries, corrupt = registry.entries(limit=args.limit,
                                            command=args.command_filter)
        if args.json:
            _print_envelope("runs", {
                "runs": [entry.to_dict() for entry in entries],
                "corrupt_skipped": corrupt,
            }, action="list")
            return 0
        print(f"runs [{registry.root}]: {len(entries)} shown")
        widths = [30, 4, 9, 20]
        print(_fmt_row(["run", "exit", "wall (s)", "recorded"], widths)
              + "  command")
        for entry in entries:
            wall = "-" if entry.wall_time_s is None else f"{entry.wall_time_s:.2f}"
            exit_code = "?" if entry.exit_code is None else str(entry.exit_code)
            when = time.strftime("%Y-%m-%d %H:%M:%S",
                                 time.localtime(entry.created_unix))
            command = " ".join(entry.argv) if entry.argv else entry.command
            print(_fmt_row([entry.run_id, exit_code, wall, when], widths)
                  + f"  {command}")
        if corrupt:
            print(f"({corrupt} corrupt entries skipped)")
        return 0

    if args.action == "show":
        if len(args.ids) != 1:
            raise ConfigError("'runs show' needs exactly one run id",
                              code="registry.bad_query",
                              hint="see 'supernpu runs list'")
        entry = registry.get(args.ids[0])
        if args.json:
            _print_envelope("runs", entry.to_dict(), action="show")
        else:
            print(entry.describe())
        return 0

    # diff
    if len(args.ids) != 2:
        raise ConfigError("'runs diff' needs two run ids",
                          code="registry.bad_query",
                          hint="see 'supernpu runs list'")
    difference = registry.diff(args.ids[0], args.ids[1])
    if args.json:
        _print_envelope("runs", difference, action="diff")
        return 0
    print(f"runs diff: {difference['a']} -> {difference['b']}")
    if difference["wall_time_delta_s"] is not None:
        print(f"  wall time   : {difference['wall_time_delta_s']:+.3f} s")
    for name, change in difference["fields"].items():
        print(f"  {name:12s}: {change['a']} -> {change['b']}")
    if difference["counters"]:
        print("  counters:")
        for name, change in difference["counters"].items():
            print(f"    {name:32s} {change['a']:>14,} -> {change['b']:>14,} "
                  f"({change['delta']:+,})")
    if not (difference["fields"] or difference["counters"]
            or difference["wall_time_delta_s"] is not None):
        print("  (no differences recorded)")
    return 0


def cmd_hotspot(args: argparse.Namespace) -> int:
    """Profile any other supernpu command's host time.

    Runs the wrapped command in-process under a :class:`HotspotProfiler`
    and prints the top-N table to stderr — the wrapped command's stdout
    is bitwise-identical to an unprofiled run.  ``tracing`` mode is the
    right choice for sub-millisecond commands (deterministic, counts
    calls); ``sampling`` (default) for anything that runs long enough to
    collect samples.
    """
    from repro.errors import ConfigError
    from repro.obs import registry as run_registry
    from repro.obs.hotspot import HotspotProfiler

    inner = list(args.argv)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        raise ConfigError(
            "'hotspot' needs a supernpu command to profile",
            code="config.missing_command",
            hint="e.g. supernpu hotspot --hotspot-mode tracing "
                 "simulate supernpu mobilenet",
        )
    profiler = HotspotProfiler(mode=args.hotspot_mode,
                               sample_hz=args.sample_hz)
    profiler.start()
    try:
        exit_code = main(inner)
    finally:
        profile = profiler.stop()
    print(profile.report(top_n=args.top), file=sys.stderr)
    if args.hotspot_out:
        with open(args.hotspot_out, "w", encoding="utf-8") as handle:
            handle.write(profile.collapsed())
        print(f"collapsed stacks written to {args.hotspot_out}",
              file=sys.stderr)
    run_registry.stage(hotspot=profile.summary())
    return exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived evaluation daemon (see docs/API.md).

    Blocks until SIGTERM/SIGINT, then drains in-flight requests and
    exits 0.  ``--chaos scope:kind:times[:seconds]`` arms fault
    injection for drills: ``handler:`` faults fire at the request
    boundary (keyed by endpoint), ``worker:`` faults travel into pool
    workers (keyed by task content hash).
    """
    import tempfile

    from repro.core.chaos import ChaosInjector, parse_fault_flag
    from repro.serve import EvalDaemon, ServeConfig

    worker_faults = {}
    handler_faults = {}
    for text in args.chaos or []:
        scope, spec = parse_fault_flag(text)
        # Worker faults key on task content hashes and handler faults on
        # endpoint names, neither of which the flag spells out — so
        # CLI-armed faults are wildcard, sharing one ``times`` budget.
        (worker_faults if scope == "worker" else handler_faults)["*"] = spec
    worker_chaos = handler_chaos = None
    if worker_faults or handler_faults:
        chaos_dir = args.chaos_dir or tempfile.mkdtemp(prefix="supernpu-chaos-")
        if worker_faults:
            worker_chaos = ChaosInjector(f"{chaos_dir}/worker", worker_faults)
        if handler_faults:
            handler_chaos = ChaosInjector(f"{chaos_dir}/handler", handler_faults)

    config = ServeConfig(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        jobs=args.jobs, retries=args.retries,
        task_timeout_s=args.task_timeout,
        max_inflight=args.max_inflight,
        quota_rate_per_s=args.quota_rps, quota_burst=args.quota_burst,
        deadline_s=args.deadline, header_timeout_s=args.header_timeout,
        body_timeout_s=args.header_timeout,
        drain_timeout_s=args.drain_timeout,
        port_file=args.port_file,
        record_runs=args.record_runs, runs_dir=args.runs_dir,
        worker_chaos=worker_chaos, handler_chaos=handler_chaos,
    )
    daemon = EvalDaemon(config)
    print(f"supernpu serve: listening on {config.host} "
          f"(port {'ephemeral' if not config.port else config.port}, "
          f"jobs={config.jobs}, quota {config.quota_rate_per_s:g} rps "
          f"burst {config.quota_burst})", file=sys.stderr)
    daemon.run()
    print("supernpu serve: drained, exiting", file=sys.stderr)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """The drill client: one request, or a whole scripted drill."""
    import json as json_mod
    import tempfile

    from repro.errors import ConfigError
    from repro.serve.client import ServeClient, read_port_file
    from repro.serve.drill import DrillFailure, run_chaos_drill, run_serve_smoke

    if args.action in ("drill", "smoke"):
        work_dir = args.work_dir or tempfile.mkdtemp(prefix="supernpu-drill-")
        runner = run_chaos_drill if args.action == "drill" else run_serve_smoke
        try:
            report = runner(work_dir)
        except DrillFailure as failure:
            print(f"{args.action} FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"{args.action} passed:")
        print(report.describe())
        return 0

    # action == "request"
    if not args.path:
        raise ConfigError("'client request' needs a path, e.g. /health or "
                          "/v1/estimate", code="config.missing_command")
    port = args.port
    if args.port_file:
        port = read_port_file(args.port_file)
    if not port:
        raise ConfigError("no daemon port: pass --port or --port-file",
                          code="config.missing_port")
    body = json_mod.loads(args.data) if args.data else None
    method = args.method or ("POST" if body is not None else "GET")
    client = ServeClient(host=args.host, port=port, client_id=args.client_id)
    response = client.request(method, args.path, body=body,
                              deadline_s=args.deadline)
    print(f"{response.status} {args.path}", file=sys.stderr)
    print(response.body)
    return 0 if response.status < 400 else 1


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of this run "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write this run's metrics snapshot + manifest as JSON")


def _add_jobs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel simulation worker processes "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache directory; "
                             "warm re-runs skip simulation entirely")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir for this run")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry budget per task for transient worker "
                             "failures (default 2; 0 fails fast)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock limit per simulation task when "
                             "--jobs > 1; a hung task is killed and retried")
    parser.add_argument("--progress", dest="progress", action="store_true",
                        default=None,
                        help="stream live sweep progress (task counts, ETA) "
                             "to stderr; default: only when stderr is a tty")
    parser.add_argument("--no-progress", dest="progress", action="store_false",
                        help="never stream sweep progress")


def _add_hotspot_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hotspot", action="store_true",
                        help="profile this command's own host time; the "
                             "top-N table goes to stderr (stdout is "
                             "bitwise-identical to an unprofiled run)")
    parser.add_argument("--hotspot-out", metavar="FILE", default=None,
                        help="write collapsed stacks (flamegraph.pl / "
                             "speedscope format); implies --hotspot")
    parser.add_argument("--hotspot-mode", choices=["sampling", "tracing"],
                        default="sampling",
                        help="sampling (default; wall-clock samples) or "
                             "tracing (deterministic sys.setprofile hook; "
                             "use for sub-millisecond commands)")
    parser.add_argument("--sample-hz", type=float, default=97.0, metavar="HZ",
                        help="sampling rate for --hotspot-mode sampling "
                             "(default 97, prime to dodge periodic aliasing)")


def _add_component_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--memory-technology", metavar="NAME", default=None,
                        help="registered memory component to charge off-chip "
                             "traffic to (see 'components list'; default: "
                             "the design's own, normally dram-300k)")
    parser.add_argument("--link-technology", metavar="NAME", default=None,
                        help="registered link component carrying that "
                             "traffic (default: 4k-300k-link)")


def _add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON envelope "
                             '({"command", "design", "workload", "data", '
                             '"manifest"}) instead of tables')


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="supernpu",
        description="SuperNPU: SFQ-based NPU modeling and simulation (MICRO 2020 reproduction)",
    )
    parser.add_argument("--debug", action="store_true",
                        help="show full tracebacks instead of one-line errors")
    parser.add_argument("--runs-dir", metavar="DIR", default=None,
                        help="run-registry directory (default: "
                             "$SUPERNPU_RUNS_DIR or ~/.supernpu/runs)")
    parser.add_argument("--no-registry", action="store_true",
                        help="do not record this invocation in the run registry")
    sub = parser.add_subparsers(dest="command", required=True)

    p_est = sub.add_parser("estimate", help="frequency / power / area of a design")
    p_est.add_argument("design", nargs="?", default="supernpu")
    p_est.add_argument("--technology", choices=["rsfq", "ersfq"], default="rsfq")
    p_est.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    _add_component_flags(p_est)
    _add_json_flag(p_est)
    p_est.set_defaults(func=cmd_estimate)

    p_sim = sub.add_parser("simulate", help="cycle-level simulation of one workload")
    p_sim.add_argument("design", nargs="?", default="supernpu")
    p_sim.add_argument("workload")
    p_sim.add_argument("--batch", type=int, default=None)
    p_sim.add_argument("--technology", choices=["rsfq", "ersfq"], default="rsfq")
    p_sim.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    _add_component_flags(p_sim)
    _add_obs_flags(p_sim)
    _add_jobs_flags(p_sim)
    _add_hotspot_flags(p_sim)
    _add_json_flag(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_prof = sub.add_parser(
        "profile",
        help="simulate one workload under full observability "
             "(span tree, counters, run manifest)",
    )
    p_prof.add_argument("design", nargs="?", default="supernpu")
    p_prof.add_argument("workload")
    p_prof.add_argument("--batch", type=int, default=None)
    p_prof.add_argument("--technology", choices=["rsfq", "ersfq"], default="rsfq")
    p_prof.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    _add_obs_flags(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_bott = sub.add_parser(
        "bottleneck",
        help="per-layer bound attribution, critical layers, roofline, "
             "and a simulated-cycle timeline export",
    )
    p_bott.add_argument("design", nargs="?", default="supernpu")
    p_bott.add_argument("workload")
    p_bott.add_argument("--batch", type=int, default=None)
    p_bott.add_argument("--technology", choices=["rsfq", "ersfq"], default="rsfq")
    p_bott.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    p_bott.add_argument("--top", type=int, default=5,
                        help="how many critical layers to rank (default 5)")
    p_bott.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    p_bott.add_argument("--timeline-out", metavar="FILE", default=None,
                        help="write the run's simulated-cycle timeline as "
                             "Chrome trace JSON (timestamps are simulated "
                             "time; open in Perfetto)")
    _add_obs_flags(p_bott)
    p_bott.set_defaults(func=cmd_bottleneck)

    p_floor = sub.add_parser("floorplan", help="block placement and interfaces")
    p_floor.add_argument("design", nargs="?", default="supernpu")
    p_floor.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    p_floor.set_defaults(func=cmd_floorplan)

    p_energy = sub.add_parser("energy", help="joules per image across designs")
    p_energy.add_argument("workload")
    p_energy.set_defaults(func=cmd_energy)

    p_eval = sub.add_parser("evaluate", help="full Fig. 23 speedup comparison")
    _add_obs_flags(p_eval)
    _add_jobs_flags(p_eval)
    _add_hotspot_flags(p_eval)
    _add_json_flag(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_val = sub.add_parser("validate", help="Fig. 13 model validation")
    p_val.set_defaults(func=cmd_validate)

    p_sweep = sub.add_parser("sweep", help="design-space sweeps (Figs. 20-22)")
    p_sweep.add_argument("which", choices=["buffers", "resources", "registers"])
    p_sweep.add_argument("--plot", action="store_true",
                         help="render the sweep as an ASCII chart")
    _add_obs_flags(p_sweep)
    _add_jobs_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_table = sub.add_parser("table", help="print Table I / II / III")
    p_table.add_argument("table", choices=["1", "2", "3"])
    p_table.set_defaults(func=cmd_table)

    p_report = sub.add_parser("report", help="export a run as JSON/CSV records")
    p_report.add_argument("design")
    p_report.add_argument("workload")
    p_report.add_argument("--batch", type=int, default=None)
    p_report.add_argument("--technology", choices=["rsfq", "ersfq"], default="rsfq")
    p_report.add_argument("--format", choices=["json", "csv"], default="json")
    p_report.add_argument("--layers", action="store_true",
                          help="emit per-layer records instead of the summary")
    p_report.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    p_report.set_defaults(func=cmd_report)

    p_compare = sub.add_parser("compare", help="side-by-side design comparison")
    p_compare.add_argument("designs", nargs="+",
                           help="named designs or .json config files")
    p_compare.add_argument("--workloads", default=None,
                           help="comma-separated workload names (default: all six)")
    _add_obs_flags(p_compare)
    _add_jobs_flags(p_compare)
    _add_json_flag(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_repro = sub.add_parser("reproduce", help="run every figure/table experiment")
    p_repro.add_argument("--out", default=None, help="directory for per-experiment JSON")
    p_repro.add_argument("--only", default=None,
                         help="comma-separated experiment ids (default: all)")
    p_repro.add_argument("--extensions", action="store_true",
                         help="also run the ext_* extension studies")
    _add_obs_flags(p_repro)
    _add_jobs_flags(p_repro)
    p_repro.set_defaults(func=cmd_reproduce)

    p_workloads = sub.add_parser("workloads", help="list the benchmark networks")
    p_workloads.set_defaults(func=cmd_workloads)

    p_trace = sub.add_parser("trace", help="per-mapping execution trace of one layer")
    p_trace.add_argument("design")
    p_trace.add_argument("workload")
    p_trace.add_argument("layer")
    p_trace.add_argument("--batch", type=int, default=1)
    p_trace.add_argument("--format", choices=["summary", "csv"], default="summary")
    p_trace.add_argument("--config-file", help="JSON NPUConfig instead of a named design")
    p_trace.set_defaults(func=cmd_trace)

    p_plan = sub.add_parser(
        "plan", help="inspect / run the declarative experiment plans"
    )
    p_plan.add_argument("action", choices=["list", "show", "run"],
                        help="list registered plans, show one plan's grids "
                             "and dry-run counts, or execute it")
    p_plan.add_argument("name", nargs="?", default=None,
                        help="a registered plan name (see 'plan list')")
    _add_obs_flags(p_plan)
    _add_jobs_flags(p_plan)
    _add_hotspot_flags(p_plan)
    _add_json_flag(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_comp = sub.add_parser(
        "components",
        help="inspect the registered component estimators "
             "(memory / link technologies)",
    )
    p_comp.add_argument("action", choices=["list", "show"],
                        help="list the registry or show one component's "
                             "energies, stage, and bandwidth")
    p_comp.add_argument("name", nargs="?", default=None,
                        help="a registered component name (see 'components list')")
    p_comp.add_argument("--kind", choices=["memory", "link"], default=None,
                        help="restrict the listing to one component kind")
    _add_json_flag(p_comp)
    p_comp.set_defaults(func=cmd_components)

    p_cache = sub.add_parser("cache", help="inspect or empty a result cache")
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--cache-dir", metavar="DIR", required=True,
                         help="the cache directory to inspect / clear")
    p_cache.set_defaults(func=cmd_cache)

    p_bench = sub.add_parser(
        "bench",
        help="record the benchmark suite as BENCH_<sha>.json / compare "
             "two recordings with a regression gate",
    )
    p_bench.add_argument("action", choices=["run", "compare"])
    p_bench.add_argument("target", nargs="?", default=None,
                         help="for 'compare': the candidate BENCH_*.json")
    p_bench.add_argument("--subset", default="all",
                         help="named subset (all, smoke, figures, ablation, "
                              "extensions) or comma-separated name fragments")
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help="where to write the recording "
                              "(default: BENCH_<git-sha>.json at the repo root)")
    p_bench.add_argument("--min-rounds", type=int, default=3, metavar="N",
                         help="pytest-benchmark rounds per benchmark (default 3)")
    p_bench.add_argument("--max-time", type=float, default=0.5,
                         metavar="SECONDS",
                         help="pytest-benchmark time budget per benchmark "
                              "(default 0.5)")
    p_bench.add_argument("--baseline", metavar="FILE", default=None,
                         help="for 'compare': explicit baseline recording "
                              "(default: newest BENCH_*.json at the repo root)")
    p_bench.add_argument("--threshold", type=float, default=1.5, metavar="X",
                         help="regression threshold on the min-wall-time "
                              "ratio (default 1.5)")
    p_bench.add_argument("--label", default=None, metavar="NAME",
                         help="for 'run': stamp the recording with a stable "
                              "label and write it as BENCH_<label>.json — "
                              "use one label per PR to grow a committed "
                              "performance trajectory")
    _add_hotspot_flags(p_bench)
    _add_json_flag(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_runs = sub.add_parser(
        "runs", help="query the persistent run registry"
    )
    p_runs.add_argument("action", choices=["list", "show", "diff"],
                        help="list recorded invocations, show one entry, or "
                             "diff two entries (fields, counters, wall time)")
    p_runs.add_argument("ids", nargs="*", default=[],
                        help="run id (show) or two run ids (diff); unique "
                             "prefixes are accepted")
    p_runs.add_argument("--limit", type=int, default=20, metavar="N",
                        help="how many entries 'list' shows (default 20)")
    p_runs.add_argument("--command", dest="command_filter", default=None,
                        metavar="SUBSTR",
                        help="for 'list': only entries whose command or argv "
                             "contains SUBSTR (case-insensitive; applied "
                             "before --limit)")
    _add_json_flag(p_runs)
    p_runs.set_defaults(func=cmd_runs)

    p_hot = sub.add_parser(
        "hotspot",
        help="run another supernpu command under the host-time profiler "
             "(top-N table on stderr; stdout untouched)",
    )
    p_hot.add_argument("--top", type=int, default=10, metavar="N",
                       help="how many functions the report ranks (default 10)")
    p_hot.add_argument("--hotspot-out", metavar="FILE", default=None,
                       help="write collapsed stacks (flamegraph.pl / "
                            "speedscope format)")
    p_hot.add_argument("--hotspot-mode", choices=["sampling", "tracing"],
                       default="sampling",
                       help="sampling (default) or deterministic tracing "
                            "(use for sub-millisecond commands)")
    p_hot.add_argument("--sample-hz", type=float, default=97.0, metavar="HZ",
                       help="sampling rate (default 97)")
    p_hot.add_argument("argv", nargs=argparse.REMAINDER,
                       help="the supernpu command line to profile, e.g. "
                            "'simulate supernpu mobilenet'")
    p_hot.set_defaults(func=cmd_hotspot)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived evaluation daemon (HTTP/JSON; see "
             "docs/API.md for endpoints, admission and fault model)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (default 0 = ephemeral; the bound "
                              "port lands in --port-file)")
    p_serve.add_argument("--port-file", metavar="FILE", default=None,
                         help="write the bound port here once listening "
                              "(removed on clean drain)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="shared content-addressed result cache; strongly "
                              "recommended — warm hits answer in microseconds")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="pool workers per request (default 1 = serial)")
    p_serve.add_argument("--retries", type=int, default=2, metavar="N")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS")
    p_serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                         help="bounded admission queue: requests beyond this "
                              "many in flight are shed with 503")
    p_serve.add_argument("--quota-rps", type=float, default=8.0, metavar="R",
                         help="per-client token refill rate (requests/s; "
                              "over-quota requests get 429 + Retry-After)")
    p_serve.add_argument("--quota-burst", type=int, default=16, metavar="N",
                         help="per-client token bucket size")
    p_serve.add_argument("--deadline", type=float, default=60.0,
                         metavar="SECONDS",
                         help="default per-request deadline; waiters shed 504 "
                              "(clients may lower it via X-Deadline-S)")
    p_serve.add_argument("--header-timeout", type=float, default=5.0,
                         metavar="SECONDS",
                         help="slow-client bound on reading the request "
                              "(shed with 408)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="how long SIGTERM waits for in-flight work")
    p_serve.add_argument("--record-runs", action="store_true",
                         help="record one run-registry entry per request")
    p_serve.add_argument("--chaos", action="append", metavar="SPEC",
                         help="arm fault injection: scope:kind:times[:seconds] "
                              "(scope handler|worker; e.g. worker:sigkill:2, "
                              "handler:hung_handler:1:0.5); repeatable")
    p_serve.add_argument("--chaos-dir", metavar="DIR", default=None,
                         help="chaos budget-ledger directory (default: a "
                              "fresh temp dir)")
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="talk to a running daemon, or run the serve drills",
    )
    p_client.add_argument("action", choices=["request", "drill", "smoke"],
                          help="request = one HTTP exchange; drill = the full "
                               "in-process chaos drill; smoke = the CI smoke "
                               "(subprocess daemon, quota burst, SIGTERM drain)")
    p_client.add_argument("path", nargs="?", default=None,
                          help="for 'request': /health, /stats, or /v1/<endpoint>")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=0)
    p_client.add_argument("--port-file", metavar="FILE", default=None,
                          help="read the daemon's port from this file")
    p_client.add_argument("--data", metavar="JSON", default=None,
                          help="request body (implies POST)")
    p_client.add_argument("--method", default=None,
                          choices=["GET", "POST"])
    p_client.add_argument("--client-id", default=None,
                          help="X-Client identity for quota accounting")
    p_client.add_argument("--deadline", dest="deadline", type=float,
                          default=None, metavar="SECONDS",
                          help="X-Deadline-S for this request")
    p_client.add_argument("--work-dir", metavar="DIR", default=None,
                          help="for drill/smoke: scratch directory "
                               "(default: a fresh temp dir)")
    p_client.set_defaults(func=cmd_client)

    return parser


def main(argv: List[str] | None = None) -> int:
    from repro.errors import ReproError
    from repro.obs import registry as run_registry

    parser = build_parser()
    args = parser.parse_args(argv)
    argv_list = list(sys.argv[1:] if argv is None else argv)
    started = time.perf_counter()
    mark = _plan_mark()
    exit_code: Optional[int] = None
    try:
        exit_code = args.func(args)
        return exit_code
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        exit_code = 0
        return exit_code
    except ReproError as error:
        if args.debug:
            raise
        print(f"error: {error.message}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        exit_code = error.exit_code
        return exit_code
    finally:
        # Every invocation lands in the run registry (best-effort; a full
        # disk never turns a successful command into a failure).  The
        # registry's own query command is not recorded — listing history
        # should not grow it.
        if args.command != "runs" and not args.no_registry:
            run_registry.record_invocation(
                command=args.command,
                argv=argv_list,
                exit_code=exit_code,
                wall_time_s=time.perf_counter() - started,
                runs_dir=args.runs_dir,
                plans=_plans_since(mark).get("plans"),
            )
        else:
            run_registry.take_staged()


if __name__ == "__main__":
    sys.exit(main())
