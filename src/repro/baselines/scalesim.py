"""SCALE-SIM-style cycle model for a conventional CMOS systolic NPU.

The paper estimates the TPU core's performance with SCALE-SIM (Samajdar et
al.), a weight-stationary systolic-array simulator.  This module implements
the same analytical cycle model: for every fold (weight tile) of a layer,

    cycles = 2 * rows_used + cols_used + vectors - 2

covering array fill, streaming one ifmap vector per cycle, and drain; SRAM
is random-access (no shift-register preparation costs), and DRAM transfers
overlap with compute (``max(on_chip, traffic/bw)`` per layer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulator.memory import memory_model_for
from repro.simulator.results import ActivityTrace, LayerResult, SimulationResult
from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network

MIB = 1024 * 1024


@dataclass(frozen=True)
class CMOSNPUConfig:
    """A conventional CMOS systolic-array NPU (the TPU core of Table I)."""

    name: str = "TPU"
    pe_array_width: int = 256
    pe_array_height: int = 256
    frequency_ghz: float = 0.7
    onchip_buffer_bytes: int = 24 * MIB
    memory_bandwidth_gbps: float = 300.0
    average_power_w: float = 40.0

    def __post_init__(self) -> None:
        if self.pe_array_width < 1 or self.pe_array_height < 1:
            raise ValueError("PE array dimensions must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.average_power_w <= 0:
            raise ValueError("power must be positive")

    @property
    def num_pes(self) -> int:
        return self.pe_array_width * self.pe_array_height

    @property
    def peak_mac_per_s(self) -> float:
        """45 TMAC/s for the 256x256 array at 0.7 GHz (Table I)."""
        return self.num_pes * self.frequency_ghz * 1e9


#: The TPU core configuration used throughout the paper's evaluation.
TPU_CORE = CMOSNPUConfig()


def _layer_cycles(layer: ConvLayer, config: CMOSNPUConfig, batch: int) -> "tuple[int, int]":
    """(fill/drain cycles, streaming cycles) over all folds of a layer."""
    height = config.pe_array_height
    width = config.pe_array_width
    vectors = layer.output_pixels * batch

    row_sizes = [height] * (layer.reduction_size // height)
    if layer.reduction_size % height:
        row_sizes.append(layer.reduction_size % height)
    col_sizes = [width] * (layer.filters_per_group // width)
    if layer.filters_per_group % width:
        col_sizes.append(layer.filters_per_group % width)

    fill_drain = 0
    streaming = 0
    for rows in row_sizes:
        for cols in col_sizes:
            fill_drain += layer.groups * (2 * rows + cols - 2)
            streaming += layer.groups * vectors
    return fill_drain, streaming


def simulate_cmos(
    config: CMOSNPUConfig,
    network: Network,
    batch: int = 1,
) -> SimulationResult:
    """Simulate ``network`` on the CMOS baseline; reuses the SFQ result type
    so downstream comparisons treat both NPUs uniformly."""
    if batch < 1:
        raise ValueError("batch must be positive")
    memory = memory_model_for(config, config.frequency_ghz)
    layers = []
    resident = False
    for index, layer in enumerate(network.layers):
        fill_drain, streaming = _layer_cycles(layer, config, batch)
        traffic = layer.weight_bytes
        if not resident:
            traffic += layer.ifmap_bytes * batch
        is_last = index == len(network.layers) - 1
        resident = (
            not is_last
            and layer.ofmap_bytes * batch <= config.onchip_buffer_bytes
        )
        if not resident:
            traffic += layer.ofmap_bytes * batch
        on_chip = fill_drain + streaming
        dram_cycles = memory.transfer_cycles(traffic)
        layers.append(
            LayerResult(
                name=layer.name,
                mappings=max(1, math.ceil(layer.reduction_size / config.pe_array_height))
                * max(1, math.ceil(layer.filters_per_group / config.pe_array_width))
                * layer.groups,
                weight_load_cycles=fill_drain,
                ifmap_prep_cycles=0,
                psum_move_cycles=0,
                activation_transfer_cycles=0,
                compute_cycles=streaming,
                dram_traffic_bytes=traffic,
                dram_cycles=dram_cycles,
                total_cycles=max(on_chip, dram_cycles),
                macs=layer.macs_per_image * batch,
            )
        )
    return SimulationResult(
        design=config.name,
        network=network.name,
        batch=batch,
        frequency_ghz=config.frequency_ghz,
        layers=layers,
        activity=ActivityTrace(),
    )
