"""Conventional (CMOS) NPU baseline: TPU core via a SCALE-SIM-like model."""

from repro.baselines.scalesim import CMOSNPUConfig, TPU_CORE, simulate_cmos

__all__ = ["CMOSNPUConfig", "TPU_CORE", "simulate_cmos"]
