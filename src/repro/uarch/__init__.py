"""SFQ microarchitectural unit models (PE, MAC, network, DAU, buffers)."""

from repro.uarch.unit import GateCounts, Unit
from repro.uarch.config import KIB, MIB, NPUConfig
from repro.uarch.mac import Dataflow, MACUnit, full_adder_counts
from repro.uarch.pe import ProcessingElement
from repro.uarch.network import (
    NetworkUnit,
    SplitterTree1D,
    SplitterTree2D,
    SystolicChain,
    compare_designs,
)
from repro.uarch.activation import MaxPoolUnit, ReLUUnit
from repro.uarch.bitserial import BitSerialMAC
from repro.uarch.generated import GeneratedMACUnit
from repro.uarch.buffers import IntegratedOutputBuffer, ShiftRegisterBuffer
from repro.uarch.dau import DataAlignmentUnit

__all__ = [
    "GateCounts",
    "Unit",
    "KIB",
    "MIB",
    "NPUConfig",
    "Dataflow",
    "MACUnit",
    "full_adder_counts",
    "ProcessingElement",
    "NetworkUnit",
    "SplitterTree1D",
    "SplitterTree2D",
    "SystolicChain",
    "compare_designs",
    "MaxPoolUnit",
    "ReLUUnit",
    "BitSerialMAC",
    "GeneratedMACUnit",
    "IntegratedOutputBuffer",
    "ShiftRegisterBuffer",
    "DataAlignmentUnit",
]
