"""Bit-serial MAC ablation (paper Section VII related work).

Early SFQ microprocessors (CORE1-beta, CORE e4) were bit-serial: tiny and
fast-clocked, "unfortunately, their throughput was quite low due to the
simple but bit-serial designs".  This unit makes that trade-off concrete
next to the paper's bit-parallel MAC:

* a bit-serial MAC processes one operand bit pair per cycle, so one
  ``bits x bits`` multiply-accumulate occupies ``bits^2`` cycles of its
  (single) multiplier cell;
* its gate count is tiny (a serial adder, a few registers), so its clock
  is bounded only by the shift-register-class pairs (~faster than the
  bit-parallel carry-save array);
* throughput per unit area is what the comparison is about.
"""

from __future__ import annotations

from typing import List

from repro.device import cells
from repro.timing.frequency import GatePair
from repro.uarch.mac import full_adder_counts
from repro.uarch.unit import GateCounts, Unit


class BitSerialMAC(Unit):
    """A bit-serial multiply-accumulate element."""

    kind = "mac-bitserial"

    def __init__(self, bits: int = 8, psum_bits: int = 24) -> None:
        if bits < 2:
            raise ValueError("MAC width must be at least 2 bits")
        if psum_bits < 2 * bits:
            raise ValueError("psum width must hold the full product")
        self.bits = bits
        self.psum_bits = psum_bits

    @property
    def cycles_per_mac(self) -> int:
        """A shift-and-add serial multiplier needs bits^2 cycles per MAC."""
        return self.bits * self.bits

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        # One serial full adder plus the AND forming the partial product.
        counts.merge(full_adder_counts())
        counts.add(cells.AND, 1)
        # Operand shift registers and the serial accumulator.
        counts.add(cells.DFF, 2 * self.bits + self.psum_bits)
        counts.add(cells.NDRO, self.bits)  # resident weight
        counts.add(cells.SPLITTER, 4)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        # No wide carry-save diagonal: the worst pair is the serial adder's
        # AND destination with the default (well-skewed) residual.
        return [
            GatePair(cells.DFF, cells.AND, label="serial operand feed"),
            GatePair(cells.XOR, cells.DFF, label="serial sum capture"),
            GatePair(cells.DFF, cells.DFF, label="operand shift"),
        ]

    def throughput_mac_per_s(self, library) -> float:
        """Effective MAC/s of one bit-serial element."""
        frequency_hz = self.frequency(library).frequency_ghz * 1e9
        return frequency_hz / self.cycles_per_mac

    def throughput_per_jj(self, library) -> float:
        """MAC/s per Josephson junction — the area-efficiency metric."""
        return self.throughput_mac_per_s(library) / self.jj_count(library)
