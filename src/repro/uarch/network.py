"""On-chip network unit designs (paper Section III-A, Figs. 4 and 5).

Three candidate designs distribute operands to a ``width``-wide PE array:

* **2D splitter tree** — two shared splitter trees (ifmap + psum/weight)
  multicast to every PE.  Both trees share a global clock line, so the
  data-vs-clock arrival mismatch at a PE grows linearly with the array
  width; at 64 PEs the critical-path delay exceeds 800 ps (Fig. 5a).
* **1D splitter tree** — one tree per PE input; no dual-input timing race,
  but the tree's long JTL runs make its area as large as the 2D tree's
  (Fig. 5b).
* **2D systolic array (store-and-forward chain)** — a DFF+splitter pair per
  PE; both of a PE's inputs hop neighbor-to-neighbor so their mismatch is
  one hop regardless of width.  Smallest delay and area; adopted.

The models below reproduce the Fig. 5 comparison and provide the gate
counts the NPU-level estimator charges for the adopted systolic network.
"""

from __future__ import annotations

import math
from typing import List

from repro.device import cells
from repro.timing.clocking import ClockingScheme
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit

#: Physical pitch between adjacent PE columns on the AIST 1.0 um process
#: (mm).  Sets JTL run lengths for the tree designs.
PE_PITCH_MM = 1.2

#: Span covered by one JTL wire cell (mm).
JTL_SPAN_MM = 0.1

#: Data-vs-clock mismatch accumulated per PE hop in the shared-clock 2D
#: splitter tree (ps per PE of width).  Calibrated so a 64-wide tree exceeds
#: 800 ps of critical-path delay (Fig. 5a).
TREE_MISMATCH_PS_PER_PE = 12.6

#: Residual skew per tree level for the 1D splitter tree (ps/level).
TREE_LEVEL_SKEW_PS = 1.5


def _tree_jtl_cells(width: int) -> int:
    """Wire cells needed by a splitter tree spanning ``width`` PEs.

    A binary tree laid over a line of ``width`` PE pitches routes roughly
    two full spans of wiring (distribution plus clock line).
    """
    span_mm = width * PE_PITCH_MM
    return max(0, int(round(2.0 * span_mm / JTL_SPAN_MM)))


class NetworkUnit(Unit):
    """Base class: an operand-distribution network for ``width`` PEs."""

    kind = "network"

    def __init__(self, width: int, bits: int = 8) -> None:
        if width < 1:
            raise ValueError("network width must be positive")
        if bits < 1:
            raise ValueError("data width must be positive")
        self.width = width
        self.bits = bits

    def critical_path_delay_ps(self, library) -> float:
        """Inverse of the maximum frequency, as plotted in Fig. 5a."""
        return self.frequency(library).cycle_time_ps


class SplitterTree2D(NetworkUnit):
    """Fan-out network: two shared-clock splitter trees per PE input."""

    kind = "network-2d-tree"

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        per_tree_splitters = max(0, self.width - 1) * self.bits
        leaf_dffs = self.width * self.bits
        # Two trees (ifmap + psum/weight distribution) sharing one global
        # clock line, so the wiring cost is one full tree's worth of JTL runs
        # split between them — which is why the paper observes the 1D and 2D
        # trees landing at about the same area (Section III-A).
        counts.add(cells.SPLITTER, 2 * per_tree_splitters)
        counts.add(cells.JTL, _tree_jtl_cells(self.width) * self.bits)
        counts.add(cells.DFF, 2 * leaf_dffs)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        # Both trees share one global clock line, so the leaf farthest from
        # the clock source sees a data-vs-clock mismatch proportional to the
        # array width (Fig. 4a "input arrival timing").
        mismatch = TREE_MISMATCH_PS_PER_PE * self.width
        return [
            GatePair(
                cells.SPLITTER,
                cells.DFF,
                scheme=ClockingScheme.CONCURRENT_FLOW,
                skew_residual_ps=mismatch,
                label="far-leaf dual-input race",
            )
        ]


class SplitterTree1D(NetworkUnit):
    """Fan-out network with a dedicated tree per PE input (no dual race)."""

    kind = "network-1d-tree"

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        counts.add(cells.SPLITTER, max(0, self.width - 1) * self.bits)
        counts.add(cells.JTL, _tree_jtl_cells(self.width) * self.bits)
        counts.add(cells.DFF, self.width * self.bits)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        depth = max(1, math.ceil(math.log2(max(2, self.width))))
        return [
            GatePair(
                cells.SPLITTER,
                cells.DFF,
                scheme=ClockingScheme.CONCURRENT_FLOW,
                skew_residual_ps=TREE_LEVEL_SKEW_PS * depth,
                label="tree leaf latch",
            )
        ]


class SystolicChain(NetworkUnit):
    """Store-and-forward chain: one DFF+splitter branch per PE (adopted)."""

    kind = "network-systolic"

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        counts.add(cells.DFF, self.width * self.bits)
        counts.add(cells.SPLITTER, self.width * self.bits)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        # Neighbor-to-neighbor hop: both PE inputs travel together, so the
        # mismatch is a single-hop residual independent of array width.
        return [
            GatePair(
                cells.DFF,
                cells.DFF,
                scheme=ClockingScheme.CONCURRENT_FLOW,
                label="store-and-forward hop",
            )
        ]


def compare_designs(width: int, bits: int, library) -> dict:
    """Fig. 5 comparison: delay (ps) and area (mm^2) of the three designs."""
    designs = {
        "2d_splitter_tree": SplitterTree2D(width, bits),
        "1d_splitter_tree": SplitterTree1D(width, bits),
        "systolic_array": SystolicChain(width, bits),
    }
    return {
        name: {
            "critical_path_delay_ps": unit.critical_path_delay_ps(library),
            "area_mm2": unit.area_mm2(library),
        }
        for name, unit in designs.items()
    }
