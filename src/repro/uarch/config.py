"""Architecture-level configuration of an SFQ NPU (paper Table I).

:class:`NPUConfig` is the single description consumed by the estimator (for
frequency / power / area) and by the cycle-level simulator (for
performance).  Named design points — Baseline, Buffer opt., Resource opt.,
SuperNPU — are constructed in :mod:`repro.core.designs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class NPUConfig:
    """Configuration of an SFQ-based weight-stationary systolic NPU.

    Attributes:
        name: Design-point name for reports.
        pe_array_width: Number of PE columns (filters mapped per tile).
        pe_array_height: Number of PE rows (reduction dimension per tile).
        data_bits: Operand width of ifmap/weight data (8-bit inference).
        psum_bits: Partial-sum accumulator width.
        ifmap_buffer_bytes: Capacity of the ifmap buffer.
        output_buffer_bytes: Capacity of the output-side buffer.  When
            ``integrated_output_buffer`` is ``True`` this is the single
            merged psum+ofmap buffer (SuperNPU, Fig. 19); otherwise it is
            the ofmap buffer and ``psum_buffer_bytes`` the separate psum
            buffer (Baseline, Fig. 3).
        psum_buffer_bytes: Separate psum buffer (0 when integrated).
        weight_buffer_bytes: Weight staging buffer.
        integrated_output_buffer: Whether psum and ofmap buffers are merged.
        ifmap_division: Number of chunks the ifmap buffer is divided into.
        output_division: Number of chunks the output buffer is divided into.
        registers_per_pe: Weight registers per PE (multi-kernel execution).
        memory_bandwidth_gbps: Off-chip DRAM bandwidth in GB/s.
        memory_technology: Registered memory component the off-chip
            traffic is charged to (``repro.components``); the default
            (``"dram-300k"``) inherits ``memory_bandwidth_gbps`` and
            reproduces the paper's fixed-DRAM model bitwise.
        link_technology: Registered link component carrying that traffic
            across temperature stages (default: the paper's implicit
            4.2K-to-300K cable bundle).
    """

    name: str
    pe_array_width: int = 256
    pe_array_height: int = 256
    data_bits: int = 8
    psum_bits: int = 24
    ifmap_buffer_bytes: int = 8 * MIB
    output_buffer_bytes: int = 8 * MIB
    psum_buffer_bytes: int = 8 * MIB
    weight_buffer_bytes: int = 64 * KIB
    integrated_output_buffer: bool = False
    ifmap_division: int = 1
    output_division: int = 1
    registers_per_pe: int = 1
    memory_bandwidth_gbps: float = 300.0
    memory_technology: str = "dram-300k"
    link_technology: str = "4k-300k-link"

    def __post_init__(self) -> None:
        if self.pe_array_width < 1 or self.pe_array_height < 1:
            raise ConfigError("PE array dimensions must be positive",
                              code="config.invalid_value",
                              width=self.pe_array_width, height=self.pe_array_height)
        if self.data_bits < 1 or self.psum_bits < self.data_bits:
            raise ConfigError("psum width must be at least the data width",
                              code="config.invalid_value",
                              data_bits=self.data_bits, psum_bits=self.psum_bits)
        if self.ifmap_division < 1 or self.output_division < 1:
            raise ConfigError("buffer division degree must be >= 1",
                              code="config.invalid_value")
        if self.registers_per_pe < 1:
            raise ConfigError("registers per PE must be >= 1",
                              code="config.invalid_value")
        if self.integrated_output_buffer and self.psum_buffer_bytes:
            raise ConfigError(
                "an integrated design has no separate psum buffer",
                code="config.invalid_value",
                hint="set psum_buffer_bytes=0 when integrated_output_buffer is true",
            )
        for field_name in (
            "ifmap_buffer_bytes",
            "output_buffer_bytes",
            "psum_buffer_bytes",
            "weight_buffer_bytes",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be non-negative",
                                  code="config.invalid_value", field=field_name)
        # Technology names must resolve in the component registry; the
        # import is deferred so repro.components stays a leaf package
        # (importing the package, not just base, loads the built-ins).
        from repro.components import component_by_name

        component_by_name(self.memory_technology, kind="memory")
        component_by_name(self.link_technology, kind="link")

    # -- Derived quantities --------------------------------------------------

    @property
    def num_pes(self) -> int:
        return self.pe_array_width * self.pe_array_height

    @property
    def onchip_buffer_bytes(self) -> int:
        """Total on-chip buffering (ifmap + output [+ psum] + weight)."""
        return (
            self.ifmap_buffer_bytes
            + self.output_buffer_bytes
            + self.psum_buffer_bytes
            + self.weight_buffer_bytes
        )

    @property
    def weights_per_tile(self) -> int:
        """Distinct filters resident per weight mapping (width x registers)."""
        return self.pe_array_width * self.registers_per_pe

    def peak_mac_per_s(self, frequency_ghz: float) -> float:
        """Peak throughput in MAC/s at the given clock (Table I row)."""
        return self.num_pes * frequency_ghz * 1e9

    def dram_bytes_per_cycle(self, frequency_ghz: float) -> float:
        """Off-chip bytes deliverable per NPU clock cycle."""
        return self.memory_bandwidth_gbps * 1e9 / (frequency_ghz * 1e9)

    def with_updates(self, **changes) -> "NPUConfig":
        """Return a modified copy (used by the design-space optimizer)."""
        return replace(self, **changes)
