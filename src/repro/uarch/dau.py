"""Data alignment unit (DAU), paper Section III-C and Fig. 9.

The DAU sits between the ifmap buffer and the PE array.  Because adjacent
PE rows hold overlapping weights of the same convolution window, they need
largely the *same* ifmap pixels; storing those duplicates in the
shift-register ifmap buffer would waste >90% of its capacity (Fig. 8).
Instead each ifmap buffer row holds unique pixels of one channel and the
DAU replicates and re-times them:

* a per-row **selector** picks (or zero-fills) the pixels the row's weight
  needs, driven by a small **controller** that knows the layer shape and
  current weight mapping;
* a cascade of **bypassable DFFs** delays row ``r`` by ``r * (stages - 1)``
  cycles so its pixels meet the partial sums descending through the
  ``stages``-deep PE pipelines (the Fig. 9 "timing adjustment" step).
"""

from __future__ import annotations

from typing import List

from repro.device import cells
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit

#: Gate cost of one per-row controller: index counters and compare logic
#: generating the select / bypass signals (Fig. 9 "Ctrl").
CONTROLLER_GATES_PER_ROW = {
    cells.TFF: 24,  # ifmap/weight pixel index counters
    cells.AND: 24,
    cells.OR: 12,
    cells.NOT: 12,
    cells.DFF: 32,
}


class DataAlignmentUnit(Unit):
    """DAU for a PE array of ``rows`` rows fed with ``bits``-wide data."""

    kind = "dau"

    def __init__(self, rows: int, bits: int = 8, pe_pipeline_stages: int = 15) -> None:
        if rows < 1:
            raise ValueError("the DAU needs at least one row")
        if pe_pipeline_stages < 1:
            raise ValueError("PE pipeline depth must be positive")
        self.rows = rows
        self.bits = bits
        self.pe_pipeline_stages = pe_pipeline_stages

    def delay_stages(self, row: int) -> int:
        """Timing-adjustment depth of ``row`` (0-indexed): r*(stages-1)."""
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        return row * (self.pe_pipeline_stages - 1)

    @property
    def total_delay_cells(self) -> int:
        """Total bypassable DFFs across all rows and bit lanes."""
        per_lane = sum(self.delay_stages(r) for r in range(self.rows))
        return per_lane * self.bits

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        # Timing-adjustment cascades (bypassable DFFs).
        counts.add(cells.DFF_BYPASS, self.total_delay_cells)
        # Data selection: each ifmap buffer row fans out to all DAU rows
        # through a splitter tree, and each DAU row gates the stream with a
        # selector (one AND per bit) fed by its controller.
        counts.add(cells.SPLITTER, self.rows * self.rows * self.bits)
        counts.add(cells.AND, self.rows * self.bits)
        for name, per_row in CONTROLLER_GATES_PER_ROW.items():
            counts.add(name, per_row * self.rows)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        return [
            GatePair(cells.DFF_BYPASS, cells.DFF_BYPASS, label="delay cascade hop"),
            GatePair(cells.AND, cells.DFF_BYPASS, label="selector output"),
        ]
