"""Base abstractions for SFQ microarchitectural units.

Each unit (PE, MAC, network, DAU, buffers) is described the way the paper's
microarchitecture-level estimator consumes it (Fig. 10): a *gate-count
histogram* (how many of each library cell the unit instantiates) and a set
of *intra-unit gate pairs* (the adjacent connections that bound the clock
frequency).  Everything else — frequency, power, area — is derived by the
estimator from a :class:`~repro.device.cells.CellLibrary`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.device import cells as cell_names
from repro.device.cells import (
    CLOCK_SELF_CONTAINED_CELLS,
    UNCLOCKED_CELLS,
    CellLibrary,
)
from repro.timing.frequency import FrequencyReport, GatePair, unit_frequency


class GateCounts:
    """A histogram of library cell instances, with arithmetic helpers."""

    def __init__(self, counts: Mapping[str, float] | None = None) -> None:
        self._counts: Counter = Counter()
        if counts:
            for name, count in counts.items():
                if count < 0:
                    raise ValueError(f"negative gate count for {name!r}")
                if count:
                    self._counts[name] += count

    def add(self, name: str, count: float = 1) -> "GateCounts":
        if count < 0:
            raise ValueError(f"negative gate count for {name!r}")
        self._counts[name] += count
        return self

    def merge(self, other: "GateCounts", times: float = 1) -> "GateCounts":
        for name, count in other.items():
            self._counts[name] += count * times
        return self

    def scaled(self, factor: float) -> "GateCounts":
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return GateCounts({name: count * factor for name, count in self.items()})

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._counts.items()

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def total(self) -> float:
        return sum(self._counts.values())

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GateCounts):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"GateCounts({inner})"


class Unit:
    """Base class for microarchitectural units.

    Subclasses implement :meth:`gate_counts` and :meth:`gate_pairs`; the
    shared derived metrics below implement the microarchitecture-level
    estimation layer of the paper (Section IV-A2).
    """

    #: Human-readable unit kind, overridden by subclasses.
    kind: str = "unit"

    def gate_counts(self) -> GateCounts:
        raise NotImplementedError

    def gate_pairs(self) -> List[GatePair]:
        raise NotImplementedError

    # -- Derived metrics ---------------------------------------------------

    def full_gate_counts(self) -> GateCounts:
        """Gate counts including the clock-distribution tree.

        Every clocked SFQ gate must receive its own clock pulse, so the
        clock network needs one splitter per clocked cell (Section II-A).
        Cells in :data:`CLOCK_SELF_CONTAINED_CELLS` already embed their
        clock coupling and are exempt.
        """
        counts = GateCounts()
        counts.merge(self.gate_counts())
        clocked = sum(
            count
            for name, count in counts.items()
            if name not in UNCLOCKED_CELLS and name not in CLOCK_SELF_CONTAINED_CELLS
        )
        if clocked:
            counts.add(cell_names.SPLITTER, clocked)
        return counts

    def frequency(self, library: CellLibrary) -> FrequencyReport:
        """The unit's maximum clock frequency (minimum over gate pairs)."""
        return unit_frequency(self.gate_pairs(), library)

    def static_power_w(self, library: CellLibrary) -> float:
        """DC bias dissipation in watts (zero under ERSFQ)."""
        return library.static_power_w(self.full_gate_counts().as_dict())

    def area_mm2(self, library: CellLibrary) -> float:
        """Layout area on the library's process in mm^2."""
        return library.total_area_um2(self.full_gate_counts().as_dict()) * 1e-6

    def jj_count(self, library: CellLibrary) -> float:
        return library.total_jj_count(self.full_gate_counts().as_dict())

    def access_energy_j(self, library: CellLibrary) -> float:
        """Energy of one fully-active clock cycle of the unit (joules).

        The cycle-level simulator multiplies this by per-unit activity
        factors and active-cycle counts to obtain dynamic power.
        """
        return library.access_energy_j(self.full_gate_counts().as_dict())
