"""A microarchitectural unit backed by a *generated* gate netlist.

The analytic :class:`~repro.uarch.mac.MACUnit` charges gate counts from a
carry-save structure model; :mod:`repro.gatesim` can instead *generate* a
working MAC netlist and count its gates exactly.  This adapter exposes a
generated circuit as a :class:`~repro.uarch.unit.Unit`, so the estimator
can price a netlist whose function has been proven by simulation — and so
the analytic model can be cross-checked against a constructive one.

The generated design is a shift-add multiplier (simpler, DFF-heavier and
deeper than the carry-save array the paper fabricates), so its estimate is
an *upper bound* on the analytic model's, not a replacement.
"""

from __future__ import annotations

from typing import List

from repro.device import cells
from repro.gatesim.circuits import PipelinedCircuit, build_mac
from repro.timing.frequency import GatePair
from repro.uarch.mac import MAC_SKEW_RESIDUAL_PS_PER_BIT
from repro.uarch.unit import GateCounts, Unit

#: Map gatesim gate kinds onto cell-library names.
_KIND_TO_CELL = {
    "AND": cells.AND,
    "OR": cells.OR,
    "XOR": cells.XOR,
    "NOT": cells.NOT,
    "DFF": cells.DFF,
    "NDRO": cells.NDRO,
    "TFF": cells.TFF,
}


class GeneratedMACUnit(Unit):
    """An estimator unit whose gate counts come from a built netlist."""

    kind = "mac-generated"

    def __init__(self, bits: int = 8, psum_bits: int = 24) -> None:
        if psum_bits < 2 * bits:
            raise ValueError("psum width must hold the full product")
        self.bits = bits
        self.psum_bits = psum_bits
        self.circuit: PipelinedCircuit = build_mac(bits, accumulator_bits=psum_bits)

    @property
    def pipeline_stages(self) -> int:
        """The netlist's real latency (deeper than the carry-save model)."""
        return self.circuit.latency

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        for kind, number in self.circuit.gate_histogram().items():
            counts.add(_KIND_TO_CELL[kind], number)
        # Operand fan-out splitters (wiring the netlist engine treats as
        # free but silicon does not): one per multi-destination output.
        fanout = sum(
            max(0, len(wire.destinations) - 1)
            for wire in self.circuit.builder.network._wires.values()
        )
        if fanout:
            counts.add(cells.SPLITTER, fanout)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        # Same critical-pair structure as the analytic MAC: the carry path
        # into an AND destination with a width-scaled skew residual.
        return [
            GatePair(
                cells.XOR,
                cells.AND,
                skew_residual_ps=MAC_SKEW_RESIDUAL_PS_PER_BIT * self.bits,
                label="generated carry path",
            ),
            GatePair(cells.DFF, cells.XOR, label="retimed operand"),
        ]

    def verify(self, samples: int = 16, seed: int = 0) -> bool:
        """Spot-check the netlist still computes a*b + c."""
        import random

        rng = random.Random(seed)
        limit = 1 << self.bits
        acc_limit = 1 << self.psum_bits
        for _ in range(samples):
            a = rng.randrange(limit)
            b = rng.randrange(limit)
            c = rng.randrange(acc_limit - limit * limit)
            if self.circuit.compute(a=a, b=b, c=c) != a * b + c:
                return False
        return True
