"""Post-array activation and pooling units.

The systolic array produces raw partial sums; inference additionally needs
ReLU and pooling between layers (the paper's workloads are standard CNNs).
These units sit on the output path, one lane per PE-array column, and are
tiny next to the array and buffers — but a complete NPU carries them, so
the architecture estimate charges them.

* ReLU on sign-magnitude-free integer data is a sign test: forward the
  value when the accumulator's sign bit is clear, else emit zero — a
  comparator (NOT + AND gating) per output bit lane.
* Max pooling keeps a running maximum per output lane: a bit-serial
  comparator, a register word, and a multiplexer.
"""

from __future__ import annotations

from typing import List

from repro.device import cells
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit


class ReLUUnit(Unit):
    """Sign-gated zeroing of ``lanes`` output lanes, ``bits`` wide each."""

    kind = "relu"

    def __init__(self, lanes: int, bits: int = 24) -> None:
        if lanes < 1 or bits < 1:
            raise ValueError("lanes and bits must be positive")
        self.lanes = lanes
        self.bits = bits

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        # Sign detection (NOT on the sign bit) fanned out over the word,
        # gating ANDs per bit, and a retiming DFF per bit.
        counts.add(cells.NOT, self.lanes)
        counts.add(cells.SPLITTER, self.lanes * self.bits)
        counts.add(cells.AND, self.lanes * self.bits)
        counts.add(cells.DFF, self.lanes * self.bits)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        return [
            GatePair(cells.NOT, cells.AND, label="sign gate"),
            GatePair(cells.AND, cells.DFF, label="gated output latch"),
        ]


class MaxPoolUnit(Unit):
    """Running-maximum pooling over ``lanes`` lanes, ``bits`` wide each."""

    kind = "maxpool"

    def __init__(self, lanes: int, bits: int = 8) -> None:
        if lanes < 1 or bits < 1:
            raise ValueError("lanes and bits must be positive")
        self.lanes = lanes
        self.bits = bits

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        per_lane = GateCounts()
        # Bit-serial magnitude comparator: XOR difference detect, AND/OR
        # resolution chain.
        per_lane.add(cells.XOR, self.bits)
        per_lane.add(cells.AND, self.bits)
        per_lane.add(cells.OR, self.bits)
        # Running-max register (NDRO so it can be re-read) and the select
        # mux steering the larger value back into it.
        per_lane.add(cells.NDRO, self.bits)
        per_lane.add(cells.MUX, self.bits)
        per_lane.add(cells.DFF, self.bits)
        counts.merge(per_lane, self.lanes)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        return [
            GatePair(cells.XOR, cells.AND, label="compare resolve"),
            GatePair(cells.MUX, cells.NDRO, label="max register update"),
            GatePair(cells.NDRO, cells.XOR, label="max register readback"),
        ]
