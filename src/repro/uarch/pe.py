"""Processing element: MAC pipeline + weight registers + systolic latches.

The paper's PE (Fig. 6a) holds its weight(s) in non-destructive-readout
(NDRO) register bits, multiplies streamed ifmap data against the resident
weight and adds the partial-sum input flowing down the column.  SuperNPU
gives each PE ``registers`` weight slots so one ifmap datum can feed
several MAC operations back-to-back through the gate-level pipeline
(Section V-B3, Fig. 22).
"""

from __future__ import annotations

from typing import List

from repro.device import cells
from repro.timing.frequency import GatePair
from repro.uarch.mac import Dataflow, MACUnit
from repro.uarch.unit import GateCounts, Unit


class ProcessingElement(Unit):
    """One systolic-array PE with weight-stationary dataflow."""

    kind = "pe"

    def __init__(
        self,
        bits: int = 8,
        psum_bits: int = 24,
        registers: int = 1,
        dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
    ) -> None:
        if registers < 1:
            raise ValueError("a PE needs at least one weight register")
        self.bits = bits
        self.psum_bits = psum_bits
        self.registers = registers
        self.dataflow = dataflow
        self.mac = MACUnit(bits, psum_bits, dataflow)

    @property
    def pipeline_stages(self) -> int:
        """Latency in cycles from ifmap input to psum output."""
        return self.mac.pipeline_stages

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        counts.merge(self.mac.gate_counts())
        # Weight storage: NDRO bits per register slot, plus a register-select
        # ring (one TFF per slot) when more than one weight is resident.
        counts.add(cells.NDRO, self.bits * self.registers)
        if self.registers > 1:
            counts.add(cells.TFF, self.registers)
            counts.add(cells.MERGER, self.bits)
        # Store-and-forward systolic latches: ifmap (bits) re-latched and
        # split toward the neighbor PE, psum (psum_bits) forwarded down.
        counts.add(cells.DFF, self.bits + self.psum_bits)
        counts.add(cells.SPLITTER, self.bits)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        pairs = list(self.mac.gate_pairs())
        # Weight register read feeding the partial-product row.
        pairs.append(
            GatePair(cells.NDRO, cells.AND, label="weight register read (NDRO->AND)")
        )
        # Systolic forwarding latch.
        pairs.append(GatePair(cells.DFF, cells.DFF, label="systolic forward (DFF->DFF)"))
        return pairs
