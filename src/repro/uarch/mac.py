"""Bit-parallel gate-level-pipelined MAC unit (paper Sections III-B, IV).

The MAC is an array multiplier (carry-save adder rows) followed by a ripple
partial-sum adder, pipelined at gate granularity as SFQ logic naturally is.
An 8-bit MAC has 15 pipeline stages (paper Section III-C: "our 8-bit PE
consists of 15 pipeline stages"), which the ``2*bits - 1`` stage model
reproduces.

Two dataflow variants exist (Fig. 6):

* weight-stationary (WS): pure feed-forward, concurrent-flow clocked;
* output-stationary (OS): an adder<->register feedback loop forces
  counter-flow clocking and roughly halves the frequency (Fig. 7c).
"""

from __future__ import annotations

import enum
from typing import List

from repro.device import cells
from repro.timing.clocking import ClockingScheme, DEFAULT_WIRE_DELAY_PS
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit


class Dataflow(enum.Enum):
    """Systolic dataflow of the PE (paper Section III-B)."""

    WEIGHT_STATIONARY = "WS"
    OUTPUT_STATIONARY = "OS"


#: Residual data-vs-clock mismatch per bit of carry-save diagonal (ps/bit).
#: Clock skewing is applied per column, so the diagonal carry path keeps a
#: residual proportional to the operand width; calibrated so a standalone
#: 8-bit MAC runs just under 66 GHz, above the 52.6 GHz full-NPU clock of
#: Table I (which is set by the inter-unit interface wire instead).
MAC_SKEW_RESIDUAL_PS_PER_BIT = 1.15

#: Ratio of path-balancing DFFs to logic gates in a gate-level-pipelined
#: array multiplier.  Every operand, partial-sum and carry bit must be
#: re-timed at every one of the ~2b pipeline stages, so deep SFQ pipelines
#: pay several path-balancing DFFs per logic gate.
PATH_BALANCE_DFF_FACTOR = 2.8


def full_adder_counts() -> GateCounts:
    """Gate decomposition of one full adder: 2 XOR, 2 AND, 1 OR."""
    return GateCounts({cells.XOR: 2, cells.AND: 2, cells.OR: 1})


class MACUnit(Unit):
    """A ``bits x bits -> psum_bits`` multiply-accumulate pipeline."""

    kind = "mac"

    def __init__(
        self,
        bits: int = 8,
        psum_bits: int = 24,
        dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
    ) -> None:
        if bits < 2:
            raise ValueError("MAC width must be at least 2 bits")
        if psum_bits < 2 * bits:
            raise ValueError("psum width must hold the full product")
        self.bits = bits
        self.psum_bits = psum_bits
        self.dataflow = dataflow

    @property
    def pipeline_stages(self) -> int:
        """Pipeline depth in cycles: ``2*bits - 1`` (15 stages at 8 bits)."""
        return 2 * self.bits - 1

    def gate_counts(self) -> GateCounts:
        b = self.bits
        counts = GateCounts()
        # Partial-product generation: b*b AND gates.
        counts.add(cells.AND, b * b)
        # Carry-save reduction: (b-1) rows of b full adders.
        counts.merge(full_adder_counts(), (b - 1) * b)
        # Final carry-propagate adder over the product bits.
        counts.merge(full_adder_counts(), b)
        # Partial-sum accumulation adder at psum width.
        counts.merge(full_adder_counts(), self.psum_bits)
        # Path-balancing DFFs re-timing operands across the pipeline.
        logic_gates = counts.total()
        counts.add(cells.DFF, round(logic_gates * PATH_BALANCE_DFF_FACTOR))
        # Splitters fan each operand bit out across its row/column.
        counts.add(cells.SPLITTER, 2 * b * self.pipeline_stages)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        if self.dataflow is Dataflow.WEIGHT_STATIONARY:
            return [
                GatePair(
                    cells.XOR,
                    cells.AND,
                    scheme=ClockingScheme.CONCURRENT_FLOW,
                    skew_residual_ps=MAC_SKEW_RESIDUAL_PS_PER_BIT * self.bits,
                    label="carry-save diagonal (XOR->AND)",
                ),
                GatePair(
                    cells.AND,
                    cells.XOR,
                    scheme=ClockingScheme.CONCURRENT_FLOW,
                    label="partial product feed (AND->XOR)",
                ),
                GatePair(
                    cells.XOR,
                    cells.XOR,
                    scheme=ClockingScheme.CONCURRENT_FLOW,
                    label="sum chain (XOR->XOR)",
                ),
            ]
        # Output-stationary: the accumulate loop (adder -> register -> adder)
        # forces counter-flow clocking; the feedback path adds the register
        # delay and its return wire on top of the adder output delay.
        feedback_extra = (
            DEFAULT_WIRE_DELAY_PS + 0.0
        )  # register -> adder return wire
        return [
            GatePair(
                cells.AND,
                cells.AND,
                scheme=ClockingScheme.COUNTER_FLOW,
                feedback_extra_delay_ps=3.3 + feedback_extra,  # DFF delay + wire
                label="accumulator loop (adder->register->adder)",
            )
        ]

    def frequency_ghz(self, library) -> float:
        """Convenience: the unit frequency in GHz."""
        return self.frequency(library).frequency_ghz
