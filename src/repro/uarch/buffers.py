"""Shift-register-based on-chip buffers, plain and chunked (Figs. 2b, 19).

SFQ on-chip memory is a bank of serially connected DFF rows with a feedback
loop (Section II-B3): one entry per row enters/leaves per cycle, and
reaching an arbitrary entry costs shifting the whole row around.  That
shifting cost is what the SuperNPU buffer optimizations attack:

* **Division** splits every row into ``division`` chunks reachable through
  MUX/DEMUX trees, cutting the worst-case shift length by the division
  degree at the price of tree area (Fig. 20's area curve).
* **Integration** merges the psum and ofmap buffers into one pool of chunks
  so "moving" a psum to the ofmap buffer is a chunk re-selection instead of
  a physical shift (Fig. 19 (1)).

The feedback loop inside each row forces counter-flow clocking, which is
the 133 GHz -> 71 GHz shift-register entry of Fig. 7c; buffers therefore do
not bound the NPU clock (their 71 GHz exceeds the 52.6 GHz chip clock, and
the paper clocks them with the global clock).
"""

from __future__ import annotations

import math
from typing import List

from repro.device import cells
from repro.timing.clocking import ClockingScheme
from repro.timing.frequency import GatePair
from repro.uarch.unit import GateCounts, Unit


class ShiftRegisterBuffer(Unit):
    """A shift-register buffer bank.

    Attributes:
        capacity_bytes: Total storage.
        io_width: Number of rows, i.e. entries moved per cycle (one per
            row).  Matches the PE-array dimension the buffer feeds: the
            Baseline ifmap buffer has 256 rows and therefore moves
            256 bytes/cycle, giving the paper's 65,536-cycle figure for
            shifting 16 MB (Section V-A2).
        entry_bits: Width of one entry (8 for ifmap/weight, psum width for
            the output side).
        division: Number of chunks each row is divided into.
    """

    kind = "buffer"

    def __init__(
        self,
        capacity_bytes: int,
        io_width: int,
        entry_bits: int = 8,
        division: int = 1,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if io_width < 1:
            raise ValueError("io width must be positive")
        if entry_bits < 1:
            raise ValueError("entry width must be positive")
        if division < 1:
            raise ValueError("division degree must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.io_width = io_width
        self.entry_bits = entry_bits
        self.division = division

    # -- Geometry ------------------------------------------------------------

    @property
    def total_entries(self) -> int:
        """Number of ``entry_bits``-wide entries stored."""
        return (self.capacity_bytes * 8) // self.entry_bits

    @property
    def row_length_entries(self) -> int:
        """Entries per row (full row shift cost in cycles, undivided)."""
        return math.ceil(self.total_entries / self.io_width)

    @property
    def chunk_length_entries(self) -> int:
        """Entries per chunk row — the worst-case shift cost in cycles."""
        return math.ceil(self.row_length_entries / self.division)

    @property
    def chunk_capacity_bytes(self) -> int:
        """Bytes per chunk (across all rows of the chunk)."""
        return math.ceil(self.capacity_bytes / self.division)

    def drain_cycles(self, num_bytes: int | None = None) -> int:
        """Cycles to stream ``num_bytes`` out (defaults to full capacity)."""
        if num_bytes is None:
            num_bytes = self.capacity_bytes
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        entries = math.ceil(num_bytes * 8 / self.entry_bits)
        return math.ceil(entries / self.io_width)

    def rewind_cycles(self) -> int:
        """Worst-case cycles to rotate a chunk back to its head.

        This is the "move data from its tail to the head" cost of
        Section V-A2 (Fig. 16 (2)); division shortens it proportionally.
        """
        return self.chunk_length_entries

    # -- Structure -----------------------------------------------------------

    def gate_counts(self) -> GateCounts:
        counts = GateCounts()
        bit_cells = self.total_entries * self.entry_bits
        counts.add(cells.SRCELL, bit_cells)
        rows = self.io_width * self.division
        # Feedback loop per chunk row: merger at the head, splitter at the
        # tail (Fig. 2b), per bit lane.
        counts.add(cells.MERGER, rows * self.entry_bits)
        counts.add(cells.SPLITTER, rows * self.entry_bits)
        if self.division > 1:
            # Chunk-select MUX/DEMUX trees per I/O lane and bit (Fig. 19):
            # (division - 1) 2:1 stages per binary tree.
            tree_cells = (self.division - 1) * self.io_width * self.entry_bits
            counts.add(cells.MUX, tree_cells)
            counts.add(cells.DEMUX, tree_cells)
        return counts

    def gate_pairs(self) -> List[GatePair]:
        pairs = [
            GatePair(
                cells.SRCELL,
                cells.SRCELL,
                scheme=ClockingScheme.COUNTER_FLOW,
                label="shift-register hop (counter-flow)",
            )
        ]
        if self.division > 1:
            pairs.append(
                GatePair(
                    cells.MUX,
                    cells.SRCELL,
                    scheme=ClockingScheme.CONCURRENT_FLOW,
                    label="chunk-select mux",
                )
            )
        return pairs


class IntegratedOutputBuffer(ShiftRegisterBuffer):
    """The merged psum+ofmap buffer of SuperNPU (Fig. 19).

    Structurally a chunked :class:`ShiftRegisterBuffer`; chunks are
    dynamically designated as psum or ofmap storage through separate
    MUX/DEMUX select trees, so psum->ofmap "movement" costs zero shifts.
    """

    kind = "integrated-output-buffer"

    def gate_counts(self) -> GateCounts:
        counts = super().gate_counts()
        if self.division > 1:
            # Second select tree so the psum chunk and the ofmap chunk can
            # be addressed independently (Fig. 19: "Ofmap buffer select" and
            # "Psum buffer select").
            tree_cells = (self.division - 1) * self.io_width * self.entry_bits
            counts.add(cells.MUX, tree_cells)
            counts.add(cells.DEMUX, tree_cells)
        return counts

    def inter_buffer_move_cycles(self) -> int:
        """Psum<->ofmap movement cost: none, it is a chunk re-selection."""
        return 0
