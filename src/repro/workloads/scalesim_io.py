"""SCALE-SIM topology-file interoperability.

SCALE-SIM (the simulator the paper uses for its TPU baseline) describes
networks as CSV topology files::

    Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,
    Channels, Num Filter, Strides,
    Conv1, 227, 227, 11, 11, 3, 96, 4,

This module reads and writes that format so workloads can be exchanged
with the SCALE-SIM ecosystem.  SCALE-SIM topologies carry no padding
column; on import, same-padding is inferred for stride-1 odd kernels
(configurable), and on export padding is dropped (as SCALE-SIM does).
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.workloads.layers import ConvLayer
from repro.workloads.models import Network

HEADER = (
    "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, "
    "Channels, Num Filter, Strides,"
)


def load_topology(
    source: Union[str, TextIO],
    name: str = "imported",
    infer_same_padding: bool = True,
) -> Network:
    """Parse a SCALE-SIM topology CSV into a :class:`Network`.

    ``source`` may be CSV text or an open file object.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    layers: List[ConvLayer] = []
    for line_number, raw in enumerate(source, start=1):
        line = raw.strip().rstrip(",")
        if not line or line.lower().startswith("layer name"):
            continue
        fields = [field.strip() for field in line.split(",")]
        if len(fields) < 8:
            raise ValueError(
                f"line {line_number}: expected 8 columns, got {len(fields)}"
            )
        layer_name = fields[0]
        try:
            ifmap_h, ifmap_w, filt_h, filt_w, channels, filters, stride = (
                int(value) for value in fields[1:8]
            )
        except ValueError as error:
            raise ValueError(f"line {line_number}: {error}") from error
        padding = 0
        if infer_same_padding and stride == 1 and filt_h == filt_w and filt_h % 2 == 1 and filt_h > 1:
            padding = filt_h // 2
        layers.append(
            ConvLayer(
                name=layer_name,
                in_channels=channels,
                in_height=ifmap_h,
                in_width=ifmap_w,
                out_channels=filters,
                kernel_height=filt_h,
                kernel_width=filt_w,
                stride=stride,
                padding=padding,
            )
        )
    if not layers:
        raise ValueError("topology file contains no layers")
    return Network(name, tuple(layers))


def dump_topology(network: Network) -> str:
    """Render a network as SCALE-SIM topology CSV text."""
    lines = [HEADER]
    for layer in network.layers:
        lines.append(
            f"{layer.name}, {layer.in_height}, {layer.in_width}, "
            f"{layer.kernel_height}, {layer.kernel_width}, "
            f"{layer.in_channels}, {layer.out_channels}, {layer.stride},"
        )
    return "\n".join(lines) + "\n"


def round_trip(network: Network) -> Network:
    """dump -> load; useful for interop tests (padding is re-inferred)."""
    return load_topology(dump_topology(network), name=network.name)
