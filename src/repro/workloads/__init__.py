"""CNN benchmark workloads and workload analyses."""

from repro.workloads.layers import ConvLayer, ceil_div, depthwise_layer, fc_layer, pooled
from repro.workloads.models import (
    Network,
    WORKLOAD_NAMES,
    all_workloads,
    alexnet,
    by_name,
    faster_rcnn,
    googlenet,
    mobilenet,
    resnet50,
    vgg16,
)
from repro.workloads.scalesim_io import dump_topology, load_topology, round_trip
from repro.workloads.synthetic import synthetic_conv_net, synthetic_suite
from repro.workloads.extra import (
    EXTRA_WORKLOADS,
    bert_base_block,
    matmul_layer,
    resnet18,
    transformer_block,
    vgg19,
)
from repro.workloads.analysis import (
    DuplicationReport,
    IntensityReport,
    duplication_report,
    intensity_report,
    max_batch_for_buffer,
    per_layer_intensity,
    summarize,
)

__all__ = [
    "ConvLayer",
    "ceil_div",
    "depthwise_layer",
    "fc_layer",
    "pooled",
    "Network",
    "WORKLOAD_NAMES",
    "all_workloads",
    "alexnet",
    "by_name",
    "faster_rcnn",
    "googlenet",
    "mobilenet",
    "resnet50",
    "vgg16",
    "DuplicationReport",
    "IntensityReport",
    "duplication_report",
    "intensity_report",
    "max_batch_for_buffer",
    "per_layer_intensity",
    "summarize",
    "dump_topology",
    "load_topology",
    "round_trip",
    "synthetic_conv_net",
    "synthetic_suite",
    "EXTRA_WORKLOADS",
    "bert_base_block",
    "matmul_layer",
    "resnet18",
    "transformer_block",
    "vgg19",
]
