"""The six CNN benchmark workloads of the paper (Section V/VI, Table II).

All networks take the paper's "typical DNN input images (224 x 224 x 3)"
(AlexNet uses its canonical 227 x 227 crop).  Only MAC-bearing layers are
modeled (convolutions and fully-connected layers); pooling and activation
run off the MAC array and contribute no systolic work, exactly as in
SCALE-SIM-style simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import UnknownWorkloadError, WorkloadError
from repro.workloads.layers import ConvLayer, depthwise_layer, fc_layer, pooled


@dataclass(frozen=True)
class Network:
    """A named feed-forward network: an ordered list of MAC layers."""

    name: str
    layers: Tuple[ConvLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers",
                                code="workload.empty", network=self.name)

    @property
    def conv_layers(self) -> Tuple[ConvLayer, ...]:
        return tuple(layer for layer in self.layers if not layer.is_fully_connected)

    @property
    def total_macs(self) -> int:
        """MACs per image over all layers."""
        return sum(layer.macs_per_image for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def max_layer_footprint_bytes(self) -> int:
        """Largest per-image (ifmap + ofmap) residency over all layers.

        This is the quantity the paper sizes batches with (Section VI-A1:
        AlexNet's largest layer holds 1.05 MB per image, so 22 images fit
        in the TPU's 24 MB buffer).
        """
        return max(layer.footprint_bytes(1) for layer in self.layers)


def _conv(
    name: str,
    cin: int,
    size: int,
    cout: int,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
) -> ConvLayer:
    if padding is None:
        padding = kernel // 2
    return ConvLayer(
        name=name,
        in_channels=cin,
        in_height=size,
        in_width=size,
        out_channels=cout,
        kernel_height=kernel,
        kernel_width=kernel,
        stride=stride,
        padding=padding,
    )


def alexnet() -> Network:
    """AlexNet (Krizhevsky et al., 2012), 227x227 input, single tower."""
    layers = [
        _conv("conv1", 3, 227, 96, 11, stride=4, padding=0),  # -> 55x55
        _conv("conv2", 96, 27, 256, 5, padding=2),  # after 3x3/2 pool: 27
        _conv("conv3", 256, 13, 384, 3),  # after pool: 13
        _conv("conv4", 384, 13, 384, 3),
        _conv("conv5", 384, 13, 256, 3),
        fc_layer("fc6", 256 * 6 * 6, 4096),
        fc_layer("fc7", 4096, 4096),
        fc_layer("fc8", 4096, 1000),
    ]
    return Network("AlexNet", tuple(layers))


def _vgg16_backbone(size: int = 224) -> List[ConvLayer]:
    plan = [
        (2, 3, 64),
        (2, 64, 128),
        (3, 128, 256),
        (3, 256, 512),
        (3, 512, 512),
    ]
    layers: List[ConvLayer] = []
    current = size
    for block_index, (repeats, cin, cout) in enumerate(plan, start=1):
        for i in range(repeats):
            in_ch = cin if i == 0 else cout
            layers.append(_conv(f"conv{block_index}_{i + 1}", in_ch, current, cout, 3))
        current = pooled(current)
    return layers


def vgg16() -> Network:
    """VGG-16 (Simonyan & Zisserman, 2014), configuration D."""
    layers = _vgg16_backbone()
    layers += [
        fc_layer("fc6", 512 * 7 * 7, 4096),
        fc_layer("fc7", 4096, 4096),
        fc_layer("fc8", 4096, 1000),
    ]
    return Network("VGG16", tuple(layers))


def resnet50() -> Network:
    """ResNet-50 (He et al., 2016), v1 bottleneck residual blocks."""
    layers: List[ConvLayer] = [_conv("conv1", 3, 224, 64, 7, stride=2, padding=3)]
    size = pooled(112, kernel=3, stride=2, padding=1)  # 56 after max pool
    in_ch = 64
    stage_plan = [  # (mid channels, out channels, blocks)
        (64, 256, 3),
        (128, 512, 4),
        (256, 1024, 6),
        (512, 2048, 3),
    ]
    for stage_index, (mid, out, blocks) in enumerate(stage_plan, start=2):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_index > 2) else 1
            prefix = f"conv{stage_index}_{block + 1}"
            layers.append(_conv(f"{prefix}a", in_ch, size, mid, 1, padding=0))
            layers.append(_conv(f"{prefix}b", mid, size, mid, 3, stride=stride))
            out_size = size // stride
            layers.append(_conv(f"{prefix}c", mid, out_size, out, 1, padding=0))
            if block == 0:
                layers.append(
                    _conv(f"{prefix}_proj", in_ch, size, out, 1, stride=stride, padding=0)
                )
            in_ch = out
            size = out_size
    layers.append(fc_layer("fc", 2048, 1000))
    return Network("ResNet50", tuple(layers))


_INCEPTION_PLAN: List[Tuple[str, int, int, Tuple[int, int], Tuple[int, int], int]] = [
    # name, in_ch, 1x1, (3x3 reduce, 3x3), (5x5 reduce, 5x5), pool proj
    ("3a", 192, 64, (96, 128), (16, 32), 32),
    ("3b", 256, 128, (128, 192), (32, 96), 64),
    ("4a", 480, 192, (96, 208), (16, 48), 64),
    ("4b", 512, 160, (112, 224), (24, 64), 64),
    ("4c", 512, 128, (128, 256), (24, 64), 64),
    ("4d", 512, 112, (144, 288), (32, 64), 64),
    ("4e", 528, 256, (160, 320), (32, 128), 128),
    ("5a", 832, 256, (160, 320), (32, 128), 128),
    ("5b", 832, 384, (192, 384), (48, 128), 128),
]


def googlenet() -> Network:
    """GoogLeNet / Inception-v1 (Szegedy et al., 2014), main branch only."""
    layers: List[ConvLayer] = [
        _conv("conv1", 3, 224, 64, 7, stride=2, padding=3),  # -> 112
        _conv("conv2_reduce", 64, 56, 64, 1, padding=0),  # after pool: 56
        _conv("conv2", 64, 56, 192, 3),
    ]
    sizes = {"3": 28, "4": 14, "5": 7}
    for name, cin, b1, (b2r, b2), (b3r, b3), b4 in _INCEPTION_PLAN:
        size = sizes[name[0]]
        layers += [
            _conv(f"inc{name}_1x1", cin, size, b1, 1, padding=0),
            _conv(f"inc{name}_3x3r", cin, size, b2r, 1, padding=0),
            _conv(f"inc{name}_3x3", b2r, size, b2, 3),
            _conv(f"inc{name}_5x5r", cin, size, b3r, 1, padding=0),
            _conv(f"inc{name}_5x5", b3r, size, b3, 5),
            _conv(f"inc{name}_pool", cin, size, b4, 1, padding=0),
        ]
    layers.append(fc_layer("fc", 1024, 1000))
    return Network("GoogLeNet", tuple(layers))


def mobilenet() -> Network:
    """MobileNet v1 (Howard et al., 2017), width multiplier 1.0."""
    layers: List[ConvLayer] = [_conv("conv1", 3, 224, 32, 3, stride=2)]
    plan = [  # (in channels, out channels, stride, input size)
        (32, 64, 1, 112),
        (64, 128, 2, 112),
        (128, 128, 1, 56),
        (128, 256, 2, 56),
        (256, 256, 1, 28),
        (256, 512, 2, 28),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ]
    for index, (cin, cout, stride, size) in enumerate(plan, start=2):
        layers.append(depthwise_layer(f"dw{index}", cin, size, stride=stride))
        layers.append(_conv(f"pw{index}", cin, size // stride, cout, 1, padding=0))
    layers.append(fc_layer("fc", 1024, 1000))
    return Network("MobileNet", tuple(layers))


def faster_rcnn() -> Network:
    """Faster R-CNN (Ren et al., 2015) with the VGG-16 backbone.

    The backbone runs on the 224 x 224 input (the paper feeds all networks
    the same typical image size); the region-proposal network adds a 3x3
    conv plus the objectness / box 1x1 convs on the conv5 map, and the
    detection head's FC stack runs once per image on the pooled 7x7x512
    feature (a single-RoI approximation of the head, documented in
    DESIGN.md).
    """
    layers = _vgg16_backbone()
    layers += [
        _conv("rpn_conv", 512, 14, 512, 3),
        _conv("rpn_cls", 512, 14, 18, 1, padding=0),
        _conv("rpn_bbox", 512, 14, 36, 1, padding=0),
        fc_layer("head_fc6", 512 * 7 * 7, 4096),
        fc_layer("head_fc7", 4096, 4096),
        fc_layer("head_cls", 4096, 21),
        fc_layer("head_bbox", 4096, 84),
    ]
    return Network("FasterRCNN", tuple(layers))


_BUILDERS: Dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "fasterrcnn": faster_rcnn,
    "googlenet": googlenet,
    "mobilenet": mobilenet,
    "resnet50": resnet50,
    "vgg16": vgg16,
}

#: Canonical workload order used in the paper's figures.
WORKLOAD_NAMES = ("AlexNet", "FasterRCNN", "GoogLeNet", "MobileNet", "ResNet50", "VGG16")


def by_name(name: str) -> Network:
    """Look up a benchmark network case-insensitively."""
    try:
        return _BUILDERS[name.lower().replace("-", "").replace("_", "")]()
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; known: {sorted(_BUILDERS)}",
            hint="run `supernpu workloads` to list the paper's benchmarks",
            name=name, known=sorted(_BUILDERS),
        ) from None


def all_workloads() -> List[Network]:
    """The six paper workloads, in canonical order."""
    return [by_name(name) for name in WORKLOAD_NAMES]
