"""Additional workloads beyond the paper's six CNNs.

The paper closes by arguing the methodology "can also be applied to other
architectures favoring the SFQ logic"; these workloads exercise that
claim:

* two more CNN classics (ResNet-18, VGG-19) for breadth;
* a transformer encoder block (BERT-base geometry) — pure matmuls, i.e.
  exactly the streaming, control-flow-free work SFQ wants.  Matmuls map
  onto the conv abstraction as 1x1 convolutions: a (M x K) @ (K x N)
  product is a layer with K input channels, N filters and M output
  positions.  Softmax/layernorm run off the MAC array, like pooling.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import ConvLayer, fc_layer, pooled
from repro.workloads.models import Network, _conv


def matmul_layer(name: str, m: int, k: int, n: int) -> ConvLayer:
    """A (m x k) @ (k x n) matrix product as a systolic-friendly layer."""
    return ConvLayer(
        name=name,
        in_channels=k,
        in_height=m,
        in_width=1,
        out_channels=n,
        kernel_height=1,
        kernel_width=1,
    )


def resnet18() -> Network:
    """ResNet-18 (He et al., 2016): basic (two-conv) residual blocks."""
    layers: List[ConvLayer] = [_conv("conv1", 3, 224, 64, 7, stride=2, padding=3)]
    size = pooled(112, kernel=3, stride=2, padding=1)  # 56
    in_ch = 64
    plan = [(64, 2), (128, 2), (256, 2), (512, 2)]
    for stage, (channels, blocks) in enumerate(plan, start=2):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 2) else 1
            prefix = f"conv{stage}_{block + 1}"
            layers.append(_conv(f"{prefix}a", in_ch, size, channels, 3, stride=stride))
            out_size = size // stride
            layers.append(_conv(f"{prefix}b", channels, out_size, channels, 3))
            if block == 0 and stage > 2:
                layers.append(
                    _conv(f"{prefix}_proj", in_ch, size, channels, 1,
                          stride=stride, padding=0)
                )
            in_ch = channels
            size = out_size
    layers.append(fc_layer("fc", 512, 1000))
    return Network("ResNet18", tuple(layers))


def vgg19() -> Network:
    """VGG-19 (configuration E): four convs in the last three blocks."""
    plan = [(2, 3, 64), (2, 64, 128), (4, 128, 256), (4, 256, 512), (4, 512, 512)]
    layers: List[ConvLayer] = []
    size = 224
    for block_index, (repeats, cin, cout) in enumerate(plan, start=1):
        for i in range(repeats):
            in_ch = cin if i == 0 else cout
            layers.append(_conv(f"conv{block_index}_{i + 1}", in_ch, size, cout, 3))
        size = pooled(size)
    layers += [
        fc_layer("fc6", 512 * 7 * 7, 4096),
        fc_layer("fc7", 4096, 4096),
        fc_layer("fc8", 4096, 1000),
    ]
    return Network("VGG19", tuple(layers))


def transformer_block(
    seq_len: int = 384,
    hidden: int = 768,
    heads: int = 12,
    ff_multiplier: int = 4,
    name: str = "BERTBlock",
) -> Network:
    """One transformer encoder block as systolic matmul layers.

    Per block: Q/K/V projections, attention scores (Q @ K^T per head),
    attention application (scores @ V), output projection, and the
    two-layer feed-forward network.  Softmax and residual adds are
    element-wise and run off the MAC array.
    """
    if hidden % heads:
        raise ValueError("hidden size must divide evenly into heads")
    head_dim = hidden // heads
    layers: List[ConvLayer] = [
        matmul_layer("q_proj", seq_len, hidden, hidden),
        matmul_layer("k_proj", seq_len, hidden, hidden),
        matmul_layer("v_proj", seq_len, hidden, hidden),
    ]
    # Per-head attention matmuls, aggregated as grouped-size products.
    for head in range(heads):
        layers.append(matmul_layer(f"scores_h{head}", seq_len, head_dim, seq_len))
        layers.append(matmul_layer(f"context_h{head}", seq_len, seq_len, head_dim))
    layers += [
        matmul_layer("out_proj", seq_len, hidden, hidden),
        matmul_layer("ffn_up", seq_len, hidden, ff_multiplier * hidden),
        matmul_layer("ffn_down", seq_len, ff_multiplier * hidden, hidden),
    ]
    return Network(name, tuple(layers))


def bert_base_block() -> Network:
    """A BERT-base encoder block at sequence length 384."""
    return transformer_block()


EXTRA_WORKLOADS = ("ResNet18", "VGG19", "BERTBlock")
