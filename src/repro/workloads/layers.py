"""DNN layer descriptions consumed by the NPU simulators.

The simulators are shape-driven (like SCALE-SIM): a layer is fully
described by its input feature-map geometry, filter geometry and stride.
Fully-connected layers are expressed as 1x1 convolutions over a 1x1
feature map, and depthwise convolutions as grouped convolutions with one
input channel per group — both map onto the weight-stationary systolic
array the same way the paper's workloads do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ConvLayer:
    """One convolutional (or FC / depthwise) layer.

    Attributes:
        name: Layer name for reports.
        in_channels: Input feature-map channels (C).
        in_height / in_width: Input spatial size (H x W), pre-padding.
        out_channels: Number of filters (K).
        kernel_height / kernel_width: Filter window (R x S).
        stride: Convolution stride (same in both dimensions).
        padding: Zero padding on each border.
        groups: Channel groups; ``groups == in_channels`` is a depthwise
            convolution.
    """

    name: str
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel_height: int
    kernel_width: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "in_channels",
            "in_height",
            "in_width",
            "out_channels",
            "kernel_height",
            "kernel_width",
            "stride",
            "groups",
        ):
            if getattr(self, field_name) < 1:
                raise WorkloadError(
                    f"{field_name} must be positive in layer {self.name!r}",
                    code="workload.invalid_layer", layer=self.name, field=field_name,
                )
        if self.padding < 0:
            raise WorkloadError(
                f"padding must be non-negative in layer {self.name!r}",
                code="workload.invalid_layer", layer=self.name,
            )
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise WorkloadError(
                f"channels must divide evenly into groups in layer {self.name!r}",
                code="workload.invalid_layer", layer=self.name, groups=self.groups,
            )
        if self.out_height < 1 or self.out_width < 1:
            raise WorkloadError(
                f"kernel does not fit the input in layer {self.name!r}",
                code="workload.invalid_layer", layer=self.name,
                hint="check kernel size, stride, and padding against the input shape",
            )

    # -- Geometry -------------------------------------------------------------

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel_height) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel_width) // self.stride + 1

    @property
    def output_pixels(self) -> int:
        """Output spatial positions per image (E x F)."""
        return self.out_height * self.out_width

    @property
    def channels_per_group(self) -> int:
        return self.in_channels // self.groups

    @property
    def filters_per_group(self) -> int:
        return self.out_channels // self.groups

    @property
    def reduction_size(self) -> int:
        """MAC-reduction depth per output value: C/g * R * S.

        This is the dimension mapped onto the PE-array *height* by the
        weight-stationary dataflow.
        """
        return self.channels_per_group * self.kernel_height * self.kernel_width

    @property
    def is_depthwise(self) -> bool:
        return self.groups == self.in_channels and self.groups > 1

    @property
    def is_fully_connected(self) -> bool:
        return (
            self.kernel_height == self.in_height
            and self.kernel_width == self.in_width
            and self.padding == 0
            and self.output_pixels == 1
        )

    # -- Volumes (bytes assume 8-bit data) ------------------------------------

    @property
    def macs_per_image(self) -> int:
        """Multiply-accumulate operations per input image."""
        return self.output_pixels * self.out_channels * self.reduction_size

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.reduction_size

    @property
    def weight_bytes(self) -> int:
        return self.weight_count

    @property
    def ifmap_bytes(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    @property
    def ofmap_bytes(self) -> int:
        return self.out_channels * self.output_pixels

    def footprint_bytes(self, batch: int = 1) -> int:
        """On-chip residency needed to run the layer without re-fetch."""
        if batch < 1:
            raise WorkloadError("batch must be positive",
                                code="workload.invalid_batch", batch=batch)
        return (self.ifmap_bytes + self.ofmap_bytes) * batch

    def unique_ifmap_pixels(self) -> int:
        """Ifmap pixels actually referenced (zero padding excluded)."""
        used_h = min(self.in_height, (self.out_height - 1) * self.stride + self.kernel_height)
        used_w = min(self.in_width, (self.out_width - 1) * self.stride + self.kernel_width)
        return self.in_channels * used_h * used_w

    def streamed_ifmap_pixels(self) -> int:
        """Ifmap pixels streamed if every PE row held its own copy.

        Each of the ``reduction_size`` weight rows consumes one pixel per
        output position, and the whole set repeats per filter group.  The
        gap between this and :meth:`unique_ifmap_pixels` is the duplication
        the DAU removes (Fig. 8).
        """
        return self.groups * self.reduction_size * self.output_pixels


def fc_layer(name: str, in_features: int, out_features: int) -> ConvLayer:
    """A fully-connected layer as a 1x1 convolution over a 1x1 map."""
    return ConvLayer(
        name=name,
        in_channels=in_features,
        in_height=1,
        in_width=1,
        out_channels=out_features,
        kernel_height=1,
        kernel_width=1,
    )


def depthwise_layer(
    name: str,
    channels: int,
    in_size: int,
    kernel: int = 3,
    stride: int = 1,
    padding: int = 1,
) -> ConvLayer:
    """A depthwise 2D convolution (one filter per input channel)."""
    return ConvLayer(
        name=name,
        in_channels=channels,
        in_height=in_size,
        in_width=in_size,
        out_channels=channels,
        kernel_height=kernel,
        kernel_width=kernel,
        stride=stride,
        padding=padding,
        groups=channels,
    )


def pooled(size: int, kernel: int = 2, stride: int | None = None, padding: int = 0) -> int:
    """Output size of a pooling layer (pooling itself runs off-array)."""
    stride = stride or kernel
    return (size + 2 * padding - kernel) // stride + 1


def ceil_div(a: int, b: int) -> int:
    if b <= 0:
        raise WorkloadError("divisor must be positive",
                            code="workload.invalid_value", divisor=b)
    return math.ceil(a / b)
