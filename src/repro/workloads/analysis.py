"""Workload analyses: ifmap duplication (Fig. 8) and compute intensity (Fig. 17).

*Duplication* quantifies why the data alignment unit exists: if every PE
row's shift-register lane stored its own copy of the ifmap pixels its
weight consumes, the overwhelming majority of buffered pixels would be
duplicates of pixels held by neighboring lanes (over 90% for the
convolutional workloads, Fig. 8).

*Computational intensity* is the paper's roofline x-axis: the number of MAC
operations executed per weight byte mapped onto the array, which for a
weight-stationary dataflow is ``output_pixels * batch`` per layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.models import Network


@dataclass(frozen=True)
class DuplicationReport:
    """Unique vs duplicated ifmap pixels for one network (Fig. 8)."""

    network: str
    unique_pixels: int
    streamed_pixels: int

    @property
    def duplicated_pixels(self) -> int:
        return max(0, self.streamed_pixels - self.unique_pixels)

    @property
    def duplication_ratio(self) -> float:
        """Fraction of streamed pixels that are duplicates."""
        if self.streamed_pixels == 0:
            return 0.0
        return self.duplicated_pixels / self.streamed_pixels


def duplication_report(network: Network) -> DuplicationReport:
    """Aggregate ifmap duplication over a network's convolutional layers."""
    unique = 0
    streamed = 0
    for layer in network.conv_layers:
        unique += min(layer.unique_ifmap_pixels(), layer.streamed_ifmap_pixels())
        streamed += layer.streamed_ifmap_pixels()
    return DuplicationReport(network.name, unique, streamed)


@dataclass(frozen=True)
class IntensityReport:
    """Computational intensity of a workload at a given batch size."""

    network: str
    batch: int
    total_macs: int
    weight_bytes: int

    @property
    def macs_per_weight_byte(self) -> float:
        """MACs executed per weight byte mapped (the Fig. 17 x-axis)."""
        if self.weight_bytes == 0:
            return 0.0
        return self.total_macs / self.weight_bytes

    def roofline_mac_per_s(self, peak_mac_per_s: float, bandwidth_bytes_per_s: float) -> float:
        """Attainable MAC/s under the weight-traffic roofline."""
        return min(peak_mac_per_s, self.macs_per_weight_byte * bandwidth_bytes_per_s)


def intensity_report(network: Network, batch: int = 1) -> IntensityReport:
    """Compute a workload's intensity: every weight performs E*F*batch MACs."""
    if batch < 1:
        raise ValueError("batch must be positive")
    return IntensityReport(
        network=network.name,
        batch=batch,
        total_macs=network.total_macs * batch,
        weight_bytes=network.total_weight_bytes,
    )


def per_layer_intensity(network: Network, batch: int = 1) -> Dict[str, float]:
    """MACs per weight byte for each layer (``output_pixels * batch``)."""
    return {layer.name: float(layer.output_pixels * batch) for layer in network.layers}


def max_batch_for_buffer(network: Network, buffer_bytes: int) -> int:
    """Largest batch whose worst layer footprint fits ``buffer_bytes``.

    This is the paper's Table II batch-sizing rule: the batch is the
    maximum number of images whose largest-layer ifmap+ofmap data can be
    held on chip without extra off-chip traffic (at least 1).
    """
    if buffer_bytes <= 0:
        return 1
    footprint = network.max_layer_footprint_bytes
    return max(1, buffer_bytes // footprint)


def summarize(networks: List[Network]) -> List[Dict[str, float]]:
    """Quick table of per-network totals used by docs and examples."""
    rows = []
    for network in networks:
        report = duplication_report(network)
        rows.append(
            {
                "network": network.name,
                "layers": len(network.layers),
                "gmacs": network.total_macs / 1e9,
                "weight_mb": network.total_weight_bytes / 2**20,
                "duplication_pct": 100.0 * report.duplication_ratio,
            }
        )
    return rows
