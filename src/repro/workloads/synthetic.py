"""Synthetic workload generators for stress-testing and fuzzing.

Random-but-valid networks let property tests and robustness sweeps cover
layer shapes the six benchmark CNNs never produce (prime channel counts,
degenerate spatial sizes, extreme aspect ratios).  Generation is fully
deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads.layers import ConvLayer, depthwise_layer, fc_layer
from repro.workloads.models import Network


def synthetic_conv_net(
    seed: int,
    num_layers: Optional[int] = None,
    max_channels: int = 256,
    input_size: int = 64,
) -> Network:
    """A random valid CNN: convs with occasional stride/depthwise, FC head."""
    if max_channels < 4:
        raise ValueError("need at least 4 channels of headroom")
    if input_size < 8:
        raise ValueError("input must be at least 8 pixels")
    rng = random.Random(seed)
    depth = num_layers if num_layers is not None else rng.randint(3, 9)
    if depth < 2:
        raise ValueError("need at least two layers")

    layers: List[ConvLayer] = []
    channels = rng.choice([1, 3, 4])
    size = input_size
    for index in range(depth - 1):
        kind = rng.random()
        if kind < 0.15 and channels > 1 and size >= 3:
            layers.append(
                depthwise_layer(f"dw{index}", channels, size, stride=1, padding=1)
            )
            continue
        out_channels = rng.randint(4, max_channels)
        kernel = rng.choice([1, 3, 3, 5]) if size >= 5 else 1
        stride = rng.choice([1, 1, 1, 2]) if size // 2 >= kernel else 1
        layers.append(
            ConvLayer(
                name=f"conv{index}",
                in_channels=channels,
                in_height=size,
                in_width=size,
                out_channels=out_channels,
                kernel_height=kernel,
                kernel_width=kernel,
                stride=stride,
                padding=kernel // 2,
            )
        )
        channels = out_channels
        size = layers[-1].out_height
    layers.append(fc_layer("head", channels * size * size, rng.choice([10, 100, 1000])))
    return Network(f"synthetic-{seed}", tuple(layers))


def synthetic_suite(count: int, seed: int = 0, **kwargs) -> List[Network]:
    """A deterministic batch of synthetic networks."""
    if count < 1:
        raise ValueError("count must be positive")
    return [synthetic_conv_net(seed + index, **kwargs) for index in range(count)]
