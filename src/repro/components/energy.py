"""Cross-temperature energy accounting.

Joins a simulated run, its estimate, and the registered memory/link
components into a per-stage dissipation map, then charges each stage at
its own cooling factor through a :class:`~repro.cooling.CoolingLadder`.
This generalizes the paper's Section VI-C wall-power model (every watt
at 400x) to systems whose memory lives at 77 K or 300 K.

Accounting model:

* the chip itself (static + activity-driven dynamic power, from
  :func:`repro.simulator.power.power_report`) dissipates at 4.2 K;
* every off-chip traffic byte pays the memory component's access energy
  at the memory's stage — traffic is a roughly symmetric mix of read
  streams (weights, refetched ifmaps) and write streams (spilled
  ofmaps), so each byte is charged the mean of the declared read/write
  energies;
* every traffic byte also pays the link's ``transfer`` energy at the
  link's (cold-end) stage;
* components' declared idle power dissipates at their stage for the
  whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.components.base import (
    DEFAULT_LINK_TECHNOLOGY,
    DEFAULT_MEMORY_TECHNOLOGY,
    STAGE_4K,
    component_by_name,
)
from repro.cooling.ladder import PAPER_LADDER, CoolingLadder


@dataclass(frozen=True)
class CrossTemperatureReport:
    """Per-stage dissipation and ladder-charged wall power of one run."""

    design: str
    network: str
    batch: int
    memory_technology: str
    link_technology: str
    dissipation_by_stage_w: Dict[float, float] = field(default_factory=dict)
    cooling_power_w: float = 0.0
    wall_power_w: float = 0.0
    free_cooling_wall_power_w: float = 0.0

    @property
    def dissipated_w(self) -> float:
        return sum(self.dissipation_by_stage_w.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "network": self.network,
            "batch": self.batch,
            "memory_technology": self.memory_technology,
            "link_technology": self.link_technology,
            "dissipation_by_stage_w": {
                f"{stage:g}": watts
                for stage, watts in self.dissipation_by_stage_w.items()
            },
            "dissipated_w": self.dissipated_w,
            "cooling_power_w": self.cooling_power_w,
            "wall_power_w": self.wall_power_w,
            "free_cooling_wall_power_w": self.free_cooling_wall_power_w,
        }


def cross_temperature_report(
    run,
    estimate,
    ladder: CoolingLadder = PAPER_LADDER,
    data_activity: Optional[float] = None,
) -> CrossTemperatureReport:
    """Charge one simulated run's dissipation stage by stage.

    ``run`` is a :class:`~repro.simulator.results.SimulationResult` and
    ``estimate`` its :class:`~repro.estimator.arch_level.NPUEstimate`;
    the memory/link technologies are read off ``estimate.config``.
    """
    # power_report pulls in the full simulator package; import lazily so
    # repro.components stays a leaf importable from uarch/simulator.
    from repro.simulator.power import DATA_ACTIVITY, power_report

    if data_activity is None:
        data_activity = DATA_ACTIVITY
    chip = power_report(run, estimate, data_activity)
    config = estimate.config
    memory = component_by_name(
        getattr(config, "memory_technology", DEFAULT_MEMORY_TECHNOLOGY),
        kind="memory")
    link = component_by_name(
        getattr(config, "link_technology", DEFAULT_LINK_TECHNOLOGY),
        kind="link")

    traffic_bytes = sum(layer.dram_traffic_bytes for layer in run.layers)
    runtime_s = run.latency_s

    dissipation: Dict[float, float] = {stage.temperature_k: 0.0
                                       for stage in ladder.stages}
    dissipation[STAGE_4K] = dissipation.get(STAGE_4K, 0.0) + chip.total_w

    memory_joules = (memory.action_energy_j("read", traffic_bytes / 2)
                     + memory.action_energy_j("write", traffic_bytes / 2))
    link_joules = link.action_energy_j("transfer", traffic_bytes)
    if runtime_s > 0:
        dissipation[memory.stage_k] = (dissipation.get(memory.stage_k, 0.0)
                                       + memory_joules / runtime_s)
        dissipation[link.stage_k] = (dissipation.get(link.stage_k, 0.0)
                                     + link_joules / runtime_s)
    dissipation[memory.stage_k] += memory.idle_power_w
    dissipation[link.stage_k] += link.idle_power_w

    return CrossTemperatureReport(
        design=run.design,
        network=run.network,
        batch=run.batch,
        memory_technology=memory.name,
        link_technology=link.name,
        dissipation_by_stage_w=dissipation,
        cooling_power_w=ladder.cooling_power_w(dissipation),
        wall_power_w=ladder.wall_power_w(dissipation),
        free_cooling_wall_power_w=ladder.wall_power_w(
            dissipation, free_cooling=True),
    )
