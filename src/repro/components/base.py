"""The component-estimator registry (Accelergy-style plug-ins).

The paper's resource-balancing and cooling studies (Sections VI-B/C) fix
one memory/interconnect technology per design; this registry makes those
choices pluggable.  Every off-chip technology — a DRAM stack, a cryoCMOS
SRAM, an inter-temperature link, a chip-to-chip transfer lane, and later
a spiking neuron cell — is one registered :class:`ComponentEstimator`
declaring:

* a **kind** (``"memory"`` or ``"link"`` today);
* a **temperature stage** (4.2 K / 77 K / 300 K) where its dissipation
  lands, so the cooling ladder can charge each joule at the wall-power
  multiplier of its own stage;
* **per-action energies** (``read`` / ``write`` / ``transfer`` / ``idle``)
  in pJ per byte moved;
* an optional **bandwidth** (GB/s) — ``None`` means "inherit the design's
  :attr:`~repro.uarch.config.NPUConfig.memory_bandwidth_gbps`", which is
  how the default components reproduce the paper's numbers bitwise;
* area per MiB of capacity, for memory components.

Designs select technologies by name through the
``memory_technology`` / ``link_technology`` fields of
:class:`~repro.uarch.config.NPUConfig`; the simulator resolves them via
:func:`repro.simulator.memory.memory_model_for` and the estimator via
:meth:`repro.estimator.arch_level.NPUEstimate.components`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import ConfigError

#: Actions a component may declare energy for (pJ per byte moved;
#: ``idle`` is accounted separately as watts, see ``idle_power_w``).
ACTIONS = ("read", "write", "transfer", "idle")

#: Component kinds understood by the framework today.
KINDS = ("memory", "link")

#: The canonical temperature stages of a superconducting system (kelvin):
#: the 4.2 K chip stage, the 77 K intermediate (liquid-nitrogen) stage,
#: and room temperature.
STAGE_4K = 4.2
STAGE_77K = 77.0
STAGE_300K = 300.0
TEMPERATURE_STAGES = (STAGE_4K, STAGE_77K, STAGE_300K)

#: Technology names a default-constructed ``NPUConfig`` resolves to.
#: These components reproduce the paper's fixed assumptions exactly.
DEFAULT_MEMORY_TECHNOLOGY = "dram-300k"
DEFAULT_LINK_TECHNOLOGY = "4k-300k-link"


@dataclass(frozen=True)
class ComponentEstimator:
    """One registered technology: per-action energy, area, stage.

    Attributes:
        name: Registry name (``"dram-300k"``, ``"cryo-sram-4k"``, ...).
        kind: One of :data:`KINDS`.
        stage_k: Temperature stage (one of :data:`TEMPERATURE_STAGES`)
            where this component's dissipation is charged by the
            cooling ladder.
        action_energy_pj_per_byte: Energy per byte moved, by action name
            (a subset of :data:`ACTIONS`); undeclared actions cost zero.
        bandwidth_gbps: Sustained bandwidth, or ``None`` to inherit the
            design's configured DRAM bandwidth (the back-compatible
            default-technology behaviour).
        area_mm2_per_mib: Layout area per MiB of capacity (memory kinds).
        idle_power_w: Static dissipation at ``stage_k`` while powered.
        description: One-line summary for ``supernpu components list``.
        citation: Where the numbers come from.
    """

    name: str
    kind: str
    stage_k: float
    action_energy_pj_per_byte: Mapping[str, float] = field(default_factory=dict)
    bandwidth_gbps: Optional[float] = None
    area_mm2_per_mib: float = 0.0
    idle_power_w: float = 0.0
    description: str = ""
    citation: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a component needs a name",
                              code="components.missing_name")
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown component kind {self.kind!r}; known: {list(KINDS)}",
                code="components.unknown_kind", component=self.name)
        if self.stage_k not in TEMPERATURE_STAGES:
            raise ConfigError(
                f"component {self.name!r} declares stage {self.stage_k} K; "
                f"stages: {list(TEMPERATURE_STAGES)}",
                code="components.unknown_stage", component=self.name,
                stage_k=self.stage_k)
        for action, energy in self.action_energy_pj_per_byte.items():
            if action not in ACTIONS:
                raise ConfigError(
                    f"component {self.name!r} declares unknown action "
                    f"{action!r}; actions: {list(ACTIONS)}",
                    code="components.unknown_action", component=self.name,
                    action=action)
            if energy < 0:
                raise ConfigError(
                    f"component {self.name!r} declares negative {action} "
                    "energy", code="components.invalid_energy",
                    component=self.name, action=action, energy=energy)
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise ConfigError(
                f"component {self.name!r} declares non-positive bandwidth",
                code="components.invalid_bandwidth", component=self.name,
                bandwidth_gbps=self.bandwidth_gbps)
        if self.area_mm2_per_mib < 0 or self.idle_power_w < 0:
            raise ConfigError(
                f"component {self.name!r} declares negative area or idle power",
                code="components.invalid_value", component=self.name)

    def action_energy_j(self, action: str, num_bytes: float = 1.0) -> float:
        """Joules to perform ``action`` on ``num_bytes`` bytes.

        Actions the component does not declare cost zero (a link has no
        ``read``); action names outside :data:`ACTIONS` are a
        :class:`ConfigError`.
        """
        if action not in ACTIONS:
            raise ConfigError(
                f"unknown component action {action!r}; actions: {list(ACTIONS)}",
                code="components.unknown_action", component=self.name,
                action=action)
        if num_bytes < 0:
            raise ConfigError("byte count must be non-negative",
                              code="components.invalid_bytes",
                              component=self.name, num_bytes=num_bytes)
        return self.action_energy_pj_per_byte.get(action, 0.0) * 1e-12 * num_bytes

    def area_mm2(self, capacity_bytes: float) -> float:
        """Layout area for ``capacity_bytes`` of this memory technology."""
        return self.area_mm2_per_mib * capacity_bytes / (1024 * 1024)

    def resolved_bandwidth_gbps(self, default_gbps: float) -> float:
        """This component's bandwidth, or the design's when inherited."""
        if self.bandwidth_gbps is None:
            return default_gbps
        return self.bandwidth_gbps

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (``supernpu components show``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "stage_k": self.stage_k,
            "action_energy_pj_per_byte": dict(self.action_energy_pj_per_byte),
            "bandwidth_gbps": self.bandwidth_gbps,
            "area_mm2_per_mib": self.area_mm2_per_mib,
            "idle_power_w": self.idle_power_w,
            "description": self.description,
            "citation": self.citation,
        }


# -- the registry ----------------------------------------------------------

_REGISTRY: Dict[str, ComponentEstimator] = {}


def register(component: ComponentEstimator) -> ComponentEstimator:
    """Add a component to the registry; the name must be unused.

    Returns the component so module-level registration can double as the
    canonical constant: ``DRAM_300K = register(ComponentEstimator(...))``.
    """
    if component.name in _REGISTRY:
        raise ConfigError(
            f"component {component.name!r} is already registered",
            code="components.duplicate", component=component.name)
    _REGISTRY[component.name] = component
    return component


def unregister(name: str) -> None:
    """Remove a component (tests registering throwaway technologies)."""
    _REGISTRY.pop(name, None)


def component_names(kind: Optional[str] = None) -> List[str]:
    """Registered names in registration order, optionally one kind only."""
    return [name for name, component in _REGISTRY.items()
            if kind is None or component.kind == kind]


def all_components(kind: Optional[str] = None) -> List[ComponentEstimator]:
    """Registered components in registration order."""
    return [component for component in _REGISTRY.values()
            if kind is None or component.kind == kind]


def component_by_name(name: str, kind: Optional[str] = None) -> ComponentEstimator:
    """Look a component up by name (and optionally check its kind)."""
    component = _REGISTRY.get(name)
    if component is None:
        raise ConfigError(
            f"unknown component {name!r}",
            code="components.unknown",
            hint="known components: " + ", ".join(component_names(kind)),
            name=name)
    if kind is not None and component.kind != kind:
        raise ConfigError(
            f"component {name!r} is a {component.kind}, not a {kind}",
            code="components.wrong_kind",
            hint=f"known {kind} components: "
                 + ", ".join(component_names(kind)),
            name=name, kind=component.kind, expected=kind)
    return component
