"""Built-in memory component models.

Three technologies spanning the three temperature stages, after the
``camronblackburn/superloop`` Accelergy plug-in library (VT-cell RAM,
delay-line memory, cryoCMOS SRAM) and the cryogenic-DRAM literature:

* ``dram-300k`` — the paper's assumption: a room-temperature DDR stack
  behind the 4K-to-300K link.  It inherits the design's configured
  bandwidth so a default-technology run reproduces today's numbers
  bitwise.
* ``dram-77k`` — DRAM operated at the liquid-nitrogen stage.  Retention
  improves by orders of magnitude at 77 K so refresh essentially
  disappears and access energy roughly halves, but each joule is now
  multiplied by the 77 K cooling factor.
* ``cryo-sram-4k`` — cryoCMOS SRAM co-located with the chip at 4.2 K.
  Per-access energy is tiny and bandwidth is chip-like, but the 400x
  wall-power multiplier applies to every joule.
* ``vtcell-ram-4k`` — Josephson-junction VT-cell RAM at 4.2 K: the
  cheapest energy per byte of all, at very low density (large area).

Energy figures are per *byte* moved; the estimator's on-chip buffer
energies remain the domain of ``repro.estimator`` — these components
model the off-chip side the paper fixes in Section VI.
"""

from __future__ import annotations

from repro.components.base import (
    STAGE_4K,
    STAGE_77K,
    STAGE_300K,
    ComponentEstimator,
    register,
)

#: The paper's memory system: room-temperature DRAM. ~31 pJ/byte is a
#: DDR4-class access+IO figure (3.9 pJ/bit); bandwidth is inherited from
#: the design's ``memory_bandwidth_gbps`` (None) so defaults reproduce
#: the paper's 300 GB/s assumption exactly.
DRAM_300K = register(ComponentEstimator(
    name="dram-300k",
    kind="memory",
    stage_k=STAGE_300K,
    action_energy_pj_per_byte={"read": 31.0, "write": 31.0},
    bandwidth_gbps=None,
    area_mm2_per_mib=0.11,
    description="Room-temperature DDR DRAM (the paper's assumption)",
    citation="SuperNPU (MICRO 2020), Sec. VI; DDR4 ~3.9 pJ/bit access+IO",
))

#: DRAM at the 77 K stage: retention time grows by orders of magnitude
#: at LN2 temperatures, so refresh power vanishes and array energy
#: roughly halves; dissipation is charged at the 77 K ladder stage.
DRAM_77K = register(ComponentEstimator(
    name="dram-77k",
    kind="memory",
    stage_k=STAGE_77K,
    action_energy_pj_per_byte={"read": 16.0, "write": 16.0},
    bandwidth_gbps=600.0,
    area_mm2_per_mib=0.11,
    description="LN2-stage DRAM: near-zero refresh, ~2x access energy win",
    citation="Ware et al., 'Do Superconducting Processors Really Need "
             "Cryogenic Memories?' (MEMSYS 2017)",
))

#: CryoCMOS SRAM co-located at the 4.2 K stage: sub-pJ/bit access and
#: chip-like bandwidth, but every joule pays the 4 K cooling factor.
CRYO_SRAM_4K = register(ComponentEstimator(
    name="cryo-sram-4k",
    kind="memory",
    stage_k=STAGE_4K,
    action_energy_pj_per_byte={"read": 1.2, "write": 1.4},
    bandwidth_gbps=1100.0,
    area_mm2_per_mib=1.6,
    description="cryoCMOS SRAM at the chip stage (superloop plug-in)",
    citation="camronblackburn/superloop cryoCMOS plug-in; Tannu et al., "
             "'Cryogenic-DRAM based memory system' (MEMSYS 2017)",
))

#: Josephson VT-cell RAM: SFQ-native storage with the lowest energy per
#: byte and the lowest density of the set.
VTCELL_RAM_4K = register(ComponentEstimator(
    name="vtcell-ram-4k",
    kind="memory",
    stage_k=STAGE_4K,
    action_energy_pj_per_byte={"read": 0.05, "write": 0.08},
    bandwidth_gbps=1400.0,
    area_mm2_per_mib=48.0,
    description="Josephson VT-cell RAM: aJ/bit access, very low density",
    citation="Semenov et al., 'VLSI of Josephson-Junction-Based "
             "Superconductor RAMs' (TASC 2019), via superloop plug-in",
))
