"""Built-in interconnect (link) component models.

Links carry the ``transfer`` action: the cost of moving one byte
between temperature stages or between chips.  The link's ``stage_k``
is its *cold* end — that is where the dissipation that the cryocooler
must pump away lands (drivers on the warm end are charged at their own
stage by being part of that stage's component).

Modeled after ``camronblackburn/superloop``'s ``inter_temp`` and
``chip2chip`` plug-ins:

* ``4k-300k-link`` — the paper's assumption: data crosses directly from
  the 4.2 K chip to room-temperature DRAM.  Zero explicit transfer
  energy and inherited bandwidth keep default-technology runs bitwise
  identical to the pre-registry estimator (the paper folds link cost
  into its DRAM-bandwidth assumption).
* ``4k-77k-link`` — a shorter hop to the LN2 stage, for pairing with
  ``dram-77k``.
* ``chip2chip-ptl`` — passive-transmission-line chip-to-chip transfer
  inside the 4.2 K stage, for multi-chip scale-out studies.
"""

from __future__ import annotations

from repro.components.base import (
    STAGE_4K,
    ComponentEstimator,
    register,
)

#: The paper's implicit link: chip directly to 300 K DRAM. Transfer cost
#: is folded into the DRAM component (the paper's model), hence zero
#: here — which is exactly what keeps default estimates bitwise stable.
LINK_4K_300K = register(ComponentEstimator(
    name="4k-300k-link",
    kind="link",
    stage_k=STAGE_4K,
    action_energy_pj_per_byte={"transfer": 0.0},
    bandwidth_gbps=None,
    description="4.2K-to-300K cable bundle (the paper's implicit link)",
    citation="SuperNPU (MICRO 2020), Sec. VI-C cooling model",
))

#: A 4.2K-to-77K hop: shorter cables, lower drive swing; ~0.8 pJ/byte
#: dissipated at the cold end, capped at 800 GB/s of cable bandwidth.
LINK_4K_77K = register(ComponentEstimator(
    name="4k-77k-link",
    kind="link",
    stage_k=STAGE_4K,
    action_energy_pj_per_byte={"transfer": 0.8},
    bandwidth_gbps=800.0,
    description="4.2K-to-77K stage link for LN2-stage memory",
    citation="camronblackburn/superloop inter_temp plug-in",
))

#: Chip-to-chip passive transmission lines within the 4.2 K stage:
#: ballistic SFQ pulse transport, nearly free per byte but
#: bandwidth-limited by lane count.
CHIP2CHIP_PTL = register(ComponentEstimator(
    name="chip2chip-ptl",
    kind="link",
    stage_k=STAGE_4K,
    action_energy_pj_per_byte={"transfer": 0.02},
    bandwidth_gbps=500.0,
    description="chip-to-chip PTL lanes inside the 4.2K stage",
    citation="camronblackburn/superloop chip2chip plug-in",
))
