"""Pluggable component-estimator registry (see ``components.base``).

Importing this package registers the built-in memory and link models;
``repro.components.study`` (the memory-technology resource-balancing
plan) is imported lazily by the plan registry, like other builders.
"""

from repro.components.base import (
    ACTIONS,
    DEFAULT_LINK_TECHNOLOGY,
    DEFAULT_MEMORY_TECHNOLOGY,
    KINDS,
    STAGE_4K,
    STAGE_77K,
    STAGE_300K,
    TEMPERATURE_STAGES,
    ComponentEstimator,
    all_components,
    component_by_name,
    component_names,
    register,
    unregister,
)
from repro.components.energy import CrossTemperatureReport, cross_temperature_report
from repro.components.links import CHIP2CHIP_PTL, LINK_4K_77K, LINK_4K_300K
from repro.components.memory import CRYO_SRAM_4K, DRAM_77K, DRAM_300K, VTCELL_RAM_4K

__all__ = [
    "ACTIONS",
    "CHIP2CHIP_PTL",
    "CRYO_SRAM_4K",
    "ComponentEstimator",
    "CrossTemperatureReport",
    "DEFAULT_LINK_TECHNOLOGY",
    "DEFAULT_MEMORY_TECHNOLOGY",
    "DRAM_300K",
    "DRAM_77K",
    "KINDS",
    "LINK_4K_300K",
    "LINK_4K_77K",
    "STAGE_300K",
    "STAGE_4K",
    "STAGE_77K",
    "TEMPERATURE_STAGES",
    "VTCELL_RAM_4K",
    "all_components",
    "component_by_name",
    "component_names",
    "cross_temperature_report",
    "register",
    "unregister",
]
