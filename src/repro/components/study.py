"""The memory-technology resource-balancing study.

Re-runs the paper's Section V-B2 resource-balancing sweep (narrow the
PE array, reinvest the area into buffers — Fig. 21) across registered
memory technologies: the paper's room-temperature DRAM, LN2-stage DRAM
behind a 4K-to-77K link, and chip-stage cryoCMOS SRAM fed by
chip-to-chip PTLs.  The interesting trade: colder memory is faster and
cheaper per access but every joule it dissipates is multiplied by its
stage's cooling factor, so the throughput winner and the wall-power
winner diverge.

:func:`memory_technology_plan` is the declarative grid (registered as
the ``memory_technologies`` named plan, so ``supernpu plan run
memory_technologies`` sweeps it through the cached job engine);
:func:`memory_technology_study` executes it and reduces each point to
throughput + cross-temperature wall power rows for ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.components.energy import cross_temperature_report
from repro.core.jobs import get_runner
from repro.core.plan import (
    ExperimentPlan,
    Grid,
    batch_axis,
    config_axis,
    execute,
    library_axis,
    workload_axis,
)
from repro.device.cells import CellLibrary, Technology, library_for
from repro.uarch.config import NPUConfig
from repro.workloads.models import Network

#: (memory, link) pairings that make physical sense: each memory is fed
#: by the link reaching its stage.
TECHNOLOGY_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("dram-300k", "4k-300k-link"),
    ("dram-77k", "4k-77k-link"),
    ("cryo-sram-4k", "chip2chip-ptl"),
)

#: PE-array widths re-balanced per technology (a Fig. 21 subset — the
#: full ladder's interior points add little to the cross-technology
#: comparison).
STUDY_WIDTHS: Tuple[int, ...] = (256, 64, 16)


def _study_configs(
    pairs: Sequence[Tuple[str, str]],
    widths: Sequence[int],
    library: CellLibrary,
) -> Tuple[Tuple[NPUConfig, ...], Tuple[str, ...]]:
    from repro.core.optimizer import resource_config

    configs: List[NPUConfig] = []
    labels: List[str] = []
    for memory_technology, link_technology in pairs:
        for width in widths:
            configs.append(resource_config(width, library=library).with_updates(
                memory_technology=memory_technology,
                link_technology=link_technology,
            ))
            labels.append(f"{memory_technology}/w{width}")
    return tuple(configs), tuple(labels)


def memory_technology_plan(
    workloads: Optional[Sequence[Network]] = None,
    library: Optional[CellLibrary] = None,
    pairs: Sequence[Tuple[str, str]] = TECHNOLOGY_PAIRS,
    widths: Sequence[int] = STUDY_WIDTHS,
) -> ExperimentPlan:
    """Fig. 21's balance sweep crossed with memory technologies."""
    library = library or library_for(Technology.RSFQ)
    if workloads is None:
        from repro.workloads.models import resnet50

        workloads = (resnet50(),)
    configs, labels = _study_configs(pairs, widths, library)
    grid = Grid("balance", (
        config_axis(configs, labels=labels),
        workload_axis(tuple(workloads)),
        batch_axis(("derived",)),
        library_axis((library,)),
    ))
    return ExperimentPlan(
        "memory_technologies", (grid,),
        description="Resource balancing (Fig. 21) across registered "
                    "memory/link technologies",
    )


@dataclass(frozen=True)
class TechnologyPoint:
    """One (technology, width) row of the study."""

    memory_technology: str
    link_technology: str
    width: int
    workload: str
    batch: int
    mac_per_s: float
    dissipated_w: float
    wall_power_w: float
    mac_per_joule_wall: float
    dissipation_by_stage_w: Dict[float, float]

    def record(self) -> Dict[str, object]:
        return {
            "memory_technology": self.memory_technology,
            "link_technology": self.link_technology,
            "width": self.width,
            "workload": self.workload,
            "batch": self.batch,
            "mac_per_s": self.mac_per_s,
            "dissipated_w": self.dissipated_w,
            "wall_power_w": self.wall_power_w,
            "mac_per_joule_wall": self.mac_per_joule_wall,
            "dissipation_by_stage_w": {
                f"{stage:g}": watts
                for stage, watts in self.dissipation_by_stage_w.items()
            },
        }


def memory_technology_study(
    workloads: Optional[Sequence[Network]] = None,
    library: Optional[CellLibrary] = None,
    pairs: Sequence[Tuple[str, str]] = TECHNOLOGY_PAIRS,
    widths: Sequence[int] = STUDY_WIDTHS,
) -> List[TechnologyPoint]:
    """Execute the plan and reduce to per-point wall-power rows."""
    library = library or library_for(Technology.RSFQ)
    plan = memory_technology_plan(workloads, library, pairs, widths)
    resultset = execute(plan)
    runner = get_runner()

    points: List[TechnologyPoint] = []
    for result in resultset:
        config = None
        for value, label in zip(plan.grids[0].axes[0].values,
                                plan.grids[0].axes[0].labels):
            if label == result.coord("config"):
                config = value
                break
        assert config is not None
        estimate = runner.estimate(config, library)
        report = cross_temperature_report(result.run, estimate)
        wall = report.wall_power_w
        points.append(TechnologyPoint(
            memory_technology=config.memory_technology,
            link_technology=config.link_technology,
            width=config.pe_array_width,
            workload=result.run.network,
            batch=result.run.batch,
            mac_per_s=result.run.mac_per_s,
            dissipated_w=report.dissipated_w,
            wall_power_w=wall,
            mac_per_joule_wall=result.run.mac_per_s / wall if wall else 0.0,
            dissipation_by_stage_w=dict(report.dissipation_by_stage_w),
        ))
    return points
