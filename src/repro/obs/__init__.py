"""``repro.obs`` — observability for the simulator / estimator / jsim stack.

Three pieces (see ``docs/OBSERVABILITY.md``):

* **metrics** — process-local counters / gauges / histograms-as-timers
  (:mod:`repro.obs.metrics`), snapshot-able to a plain dict / JSON;
* **tracing** — nested wall-time spans with Chrome trace-event export and
  a human-readable summary tree (:mod:`repro.obs.tracing`);
* **manifests** — provenance records (config hash, workload, batch,
  technology, version, wall time) embedded in every exported file
  (:mod:`repro.obs.manifest`);
* **timeline** — simulated-cycle event timeline of the *modeled
  hardware* (layer spans, on-chip phases, DRAM transfers, buffer
  occupancy) with Chrome trace export in the simulated clock domain
  (:mod:`repro.obs.timeline`).

Everything is **off by default**: the instrumented hot paths in
``simulator.engine``, ``jsim.solver``, ``estimator.arch_level`` and
``core.search`` reduce to a single flag check until :func:`enable` is
called (the CLI does this for ``supernpu profile`` and whenever
``--trace-out`` / ``--metrics-out`` is passed).

PR 6 adds the cross-run trajectory on top of the in-run runtime:

* **progress** — live task-lifecycle streaming for parallel sweeps
  (:mod:`repro.obs.progress`);
* **registry** — a persistent per-invocation run registry under
  ``~/.supernpu/runs/`` (:mod:`repro.obs.registry`);
* **bench** — the BENCH_<sha>.json recorder and regression comparator
  over the ``benchmarks/`` suite (:mod:`repro.obs.bench`).

PR 7 adds host-time hotspot profiling (:mod:`repro.obs.hotspot`): a
stdlib-only sampling profiler (plus a deterministic tracing fallback for
sub-millisecond runs) with collapsed-stack export and a report that
joins per-function self-time with the simulated-cycle phase attribution.
Worker processes spawned by :mod:`repro.core.jobs` serialize their own
spans / counters / samples into per-task sidecars that the parent merges
into one Chrome trace with one lane per worker PID.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import CounterSample, CycleTimeline, TimelineEvent
from repro.obs.tracing import Span, Tracer
from repro.obs.manifest import RunManifest, config_content_hash
from repro.obs.export import metrics_document, write_metrics, write_timeline, write_trace
from repro.obs.runtime import (
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    metrics,
    reset,
    trace_instant,
    trace_span,
    tracer,
)
from repro.obs.progress import ProgressEvent, ProgressReporter, auto_reporter
from repro.obs.registry import RunEntry, RunRegistry, record_invocation
from repro.obs.hotspot import HotspotProfile, HotspotProfiler, active_profiler

__all__ = [
    "Counter",
    "CounterSample",
    "CycleTimeline",
    "Gauge",
    "Histogram",
    "HotspotProfile",
    "HotspotProfiler",
    "MetricsRegistry",
    "ProgressEvent",
    "ProgressReporter",
    "RunEntry",
    "RunRegistry",
    "Span",
    "TimelineEvent",
    "Tracer",
    "RunManifest",
    "active_profiler",
    "auto_reporter",
    "config_content_hash",
    "record_invocation",
    "metrics_document",
    "write_metrics",
    "write_timeline",
    "write_trace",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "metrics",
    "reset",
    "trace_instant",
    "trace_span",
    "tracer",
]
