"""Run manifests: what exactly produced this trace / metrics file.

A :class:`RunManifest` pins down one top-level run — which design (by
name *and* content hash, so edited config files are distinguishable),
which workload and batch, which cell-library technology, which package
version — plus the measured wall time.  Manifests are embedded in every
exported metrics/trace JSON so results stay attributable across PRs.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional


def environment_provenance() -> Dict[str, Any]:
    """Host/interpreter facts that make cross-machine comparisons readable.

    Bench and registry diffs are meaningless without knowing whether the
    two runs shared a python version, numpy version, and machine — this
    captures exactly that, nothing more (no env vars, no paths).
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:
        numpy_version = None
    env: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        env["hostname"] = socket.gethostname()
    except Exception:
        env["hostname"] = None
    return env


def config_content_hash(config: Any) -> str:
    """Stable short hash of an :class:`NPUConfig`'s full content.

    Hashes the canonical (sorted-key) JSON serialization, so two configs
    with identical fields hash identically regardless of provenance
    (named design vs ``--config-file``).
    """
    from repro.core.config_io import dumps

    digest = hashlib.sha256(dumps(config).encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass
class RunManifest:
    """Provenance record for one top-level run."""

    command: str
    design: Optional[str] = None
    config_hash: Optional[str] = None
    workload: Optional[str] = None
    batch: Optional[int] = None
    technology: Optional[str] = None
    package_version: str = ""
    wall_time_s: Optional[float] = None
    created_unix: float = field(default_factory=time.time)
    environment: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        command: str,
        config: Any = None,
        workload: Any = None,
        batch: Optional[int] = None,
        technology: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Build a manifest from live objects (config / network) or names."""
        import repro

        design = None
        config_hash = None
        if config is not None:
            design = getattr(config, "name", str(config))
            try:
                config_hash = config_content_hash(config)
            except Exception:
                config_hash = None
        workload_name = None
        if workload is not None:
            workload_name = getattr(workload, "name", str(workload))
        return cls(
            command=command,
            design=design,
            config_hash=config_hash,
            workload=workload_name,
            batch=batch,
            technology=technology,
            package_version=getattr(repro, "__version__", "unknown"),
            wall_time_s=wall_time_s,
            environment=environment_provenance(),
            extra=dict(extra),
        )

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        extra = data.pop("extra")
        data.update(extra)
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """One terminal-friendly line per populated field."""
        rows = [("command", self.command)]
        if self.design:
            label = self.design
            if self.config_hash:
                label += f" (sha256:{self.config_hash})"
            rows.append(("design", label))
        if self.workload:
            rows.append(("workload", self.workload))
        if self.batch is not None:
            rows.append(("batch", str(self.batch)))
        if self.technology:
            rows.append(("technology", self.technology))
        rows.append(("version", self.package_version))
        if self.wall_time_s is not None:
            rows.append(("wall time", f"{self.wall_time_s:.3f} s"))
        if self.environment:
            env = self.environment
            summary = (f"python {env.get('python')}, numpy {env.get('numpy')}, "
                       f"{env.get('platform')}, {env.get('cpu_count')} cpus, "
                       f"host {env.get('hostname')}")
            rows.append(("environment", summary))
        for key, value in self.extra.items():
            rows.append((key, str(value)))
        return "\n".join(f"  {k:12s}: {v}" for k, v in rows)
