"""Wall-time span tracing with Chrome trace-event export.

A :class:`Tracer` records a tree of named spans (``simulate`` →
``simulate/layer`` → ...) with wall-clock durations and free-form
attributes.  Finished traces export two ways:

* :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON object
  format (``{"traceEvents": [...]}`` with ``ph: "X"`` complete events),
  loadable in Perfetto / ``chrome://tracing``;
* :meth:`Tracer.summary_table` — a human-readable tree of aggregated
  wall times per span path, for terminal output.

Disabled (the default), ``Tracer.span()`` returns a shared no-op context
manager, so instrumented code costs one flag check per span.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional


class Span:
    """One finished (or in-flight) traced region."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s


class _ActiveSpan:
    """Context manager binding a :class:`Span` onto the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.span.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._pop(self.span)


class _NoopSpan:
    """Shared stand-in while tracing is disabled."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested spans into a forest of wall-time trees."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        # perf_counter has an arbitrary epoch; exported timestamps are
        # relative to the first span of the trace.  The matching unix
        # time is kept so spans serialized by other processes (pool
        # workers, whose perf_counter epoch differs) can be re-anchored
        # onto this trace's timeline.
        self._epoch: Optional[float] = None
        self._epoch_unix: Optional[float] = None
        # Pre-rendered Chrome events absorbed from other processes.
        self._foreign_events: List[Dict[str, Any]] = []
        self._foreign_pids: List[int] = []
        self._foreign_min_unix: Optional[float] = None

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, Span(name, attrs))

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event at the current stack position.

        Instants mark moments (a task finishing, a pool restarting)
        rather than regions; they export as zero-width ``ph: "X"``
        events nested under whatever span is currently open.
        """
        if not self.enabled:
            return
        span = Span(name, attrs)
        now = time.perf_counter()
        span.start_s = now
        span.end_s = now
        if self._epoch is None:
            self._epoch = now
            self._epoch_unix = time.time()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        span.start_s = time.perf_counter()
        if self._epoch is None:
            self._epoch = span.start_s
            self._epoch_unix = time.time()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        # Tolerate exception-unwound frames: pop through to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = None
        self._epoch_unix = None
        self._foreign_events = []
        self._foreign_pids = []
        self._foreign_min_unix = None

    # -- cross-process merge --------------------------------------------
    def absorb_serialized(self, spans: List[Dict[str, Any]], pid: int,
                          process_name: Optional[str] = None) -> None:
        """Merge spans serialized by another process onto this trace.

        ``spans`` is the output of :func:`serialize_spans` run in the
        other process: a span forest with **unix** timestamps (the only
        clock two processes share).  Each span becomes a complete event
        in a per-``pid`` lane; a ``process_name`` metadata event labels
        the lane.  Works even while this tracer is disabled — the data
        was already collected elsewhere.
        """
        if not spans:
            return
        # Keep raw unix stamps; ts conversion happens at export time,
        # anchored at the earliest event across *all* processes — batches
        # arrive in sidecar-hash order, not chronological order, so no
        # single batch can safely fix the anchor.
        first = min(span["start_unix"] for span in spans)
        if self._foreign_min_unix is None or first < self._foreign_min_unix:
            self._foreign_min_unix = first
        if pid not in self._foreign_pids:
            self._foreign_pids.append(pid)
            self._foreign_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name or f"worker-{pid}"},
            })

        def emit(span: Dict[str, Any]) -> None:
            self._foreign_events.append({
                "name": span["name"],
                "ph": "X",
                "start_unix": span["start_unix"],
                "dur": max(0.0, span["end_unix"] - span["start_unix"]) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": dict(span.get("attrs") or {}),
            })
            for child in span.get("children") or ():
                emit(child)

        for span in spans:
            emit(span)

    def foreign_pids(self) -> List[int]:
        """PIDs whose spans have been absorbed into this trace."""
        return list(self._foreign_pids)

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Every span becomes one complete (``ph: "X"``) event with
        microsecond ``ts``/``dur`` relative to the trace start; span
        attributes ride in ``args``.
        """
        events: List[Dict[str, Any]] = []
        epoch = self._epoch or 0.0
        # One shared zero across processes: the earliest event anywhere.
        # Local spans shift right when a worker span started first.
        anchor_unix = None
        local_offset_us = 0.0
        if self._foreign_min_unix is not None:
            anchor_unix = self._foreign_min_unix
            if self.roots and self._epoch_unix is not None:
                anchor_unix = min(anchor_unix, self._epoch_unix)
                local_offset_us = (self._epoch_unix - anchor_unix) * 1e6

        def emit(span: Span) -> None:
            end = span.end_s if span.end_s is not None else time.perf_counter()
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - epoch) * 1e6 + local_offset_us,
                    "dur": (end - span.start_s) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attrs),
                }
            )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        if self._foreign_events:
            if events:
                events.append({
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": "main"},
                })
            for event in self._foreign_events:
                if event.get("ph") == "M":
                    events.append(event)
                    continue
                converted = dict(event)
                start_unix = converted.pop("start_unix")
                converted["ts"] = (start_unix - (anchor_unix or start_unix)) * 1e6
                events.append(converted)
        trace: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
        if metadata:
            trace["metadata"] = metadata
        return trace

    def to_chrome_trace_json(self, metadata: Optional[Dict[str, Any]] = None,
                             indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(metadata), indent=indent)

    def summary_table(self) -> str:
        """Aggregated wall-time tree: one row per span path.

        Sibling spans with the same name merge into a single row with a
        call count, so a 53-layer ``simulate/layer`` fan-out reads as one
        line.  Percentages are relative to the top-level total.
        """
        total = sum(root.duration_s for root in self.roots)
        lines = [f"{'span':<44s} {'calls':>6s} {'wall ms':>12s} {'%':>7s}"]

        def aggregate(spans: List[Span]) -> "Dict[str, List[Span]]":
            groups: Dict[str, List[Span]] = {}
            for span in spans:
                groups.setdefault(span.name, []).append(span)
            return groups

        def emit(spans: List[Span], depth: int) -> None:
            for name, group in aggregate(spans).items():
                wall = sum(s.duration_s for s in group)
                share = 100.0 * wall / total if total else 0.0
                label = "  " * depth + name
                lines.append(
                    f"{label:<44s} {len(group):>6d} {1e3 * wall:>12.3f} {share:>6.1f}%"
                )
                children = [c for s in group for c in s.children]
                if children:
                    emit(children, depth + 1)

        emit(self.roots, 0)
        if len(lines) == 1:
            lines.append("(no spans recorded)")
        return "\n".join(lines)


def serialize_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    """Serialize a tracer's span forest with **unix** timestamps.

    ``perf_counter`` epochs are per-process, so spans shipped across a
    process boundary (worker → parent sidecar) carry unix times instead;
    :meth:`Tracer.absorb_serialized` re-anchors them on the other side.
    """
    offset = time.time() - time.perf_counter()

    def encode(span: Span) -> Dict[str, Any]:
        end = span.end_s if span.end_s is not None else time.perf_counter()
        return {
            "name": span.name,
            "attrs": dict(span.attrs),
            "start_unix": span.start_s + offset,
            "end_unix": end + offset,
            "children": [encode(child) for child in span.children],
        }

    return [encode(root) for root in tracer.roots]
