"""Wall-time span tracing with Chrome trace-event export.

A :class:`Tracer` records a tree of named spans (``simulate`` →
``simulate/layer`` → ...) with wall-clock durations and free-form
attributes.  Finished traces export two ways:

* :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON object
  format (``{"traceEvents": [...]}`` with ``ph: "X"`` complete events),
  loadable in Perfetto / ``chrome://tracing``;
* :meth:`Tracer.summary_table` — a human-readable tree of aggregated
  wall times per span path, for terminal output.

Disabled (the default), ``Tracer.span()`` returns a shared no-op context
manager, so instrumented code costs one flag check per span.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional


class Span:
    """One finished (or in-flight) traced region."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s


class _ActiveSpan:
    """Context manager binding a :class:`Span` onto the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.span.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._pop(self.span)


class _NoopSpan:
    """Shared stand-in while tracing is disabled."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records nested spans into a forest of wall-time trees."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        # perf_counter has an arbitrary epoch; exported timestamps are
        # relative to the first span of the trace.
        self._epoch: Optional[float] = None

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, Span(name, attrs))

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event at the current stack position.

        Instants mark moments (a task finishing, a pool restarting)
        rather than regions; they export as zero-width ``ph: "X"``
        events nested under whatever span is currently open.
        """
        if not self.enabled:
            return
        span = Span(name, attrs)
        now = time.perf_counter()
        span.start_s = now
        span.end_s = now
        if self._epoch is None:
            self._epoch = now
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        span.start_s = time.perf_counter()
        if self._epoch is None:
            self._epoch = span.start_s
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        # Tolerate exception-unwound frames: pop through to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = None

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Every span becomes one complete (``ph: "X"``) event with
        microsecond ``ts``/``dur`` relative to the trace start; span
        attributes ride in ``args``.
        """
        events: List[Dict[str, Any]] = []
        epoch = self._epoch or 0.0

        def emit(span: Span) -> None:
            end = span.end_s if span.end_s is not None else time.perf_counter()
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - epoch) * 1e6,
                    "dur": (end - span.start_s) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attrs),
                }
            )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        trace: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
        if metadata:
            trace["metadata"] = metadata
        return trace

    def to_chrome_trace_json(self, metadata: Optional[Dict[str, Any]] = None,
                             indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(metadata), indent=indent)

    def summary_table(self) -> str:
        """Aggregated wall-time tree: one row per span path.

        Sibling spans with the same name merge into a single row with a
        call count, so a 53-layer ``simulate/layer`` fan-out reads as one
        line.  Percentages are relative to the top-level total.
        """
        total = sum(root.duration_s for root in self.roots)
        lines = [f"{'span':<44s} {'calls':>6s} {'wall ms':>12s} {'%':>7s}"]

        def aggregate(spans: List[Span]) -> "Dict[str, List[Span]]":
            groups: Dict[str, List[Span]] = {}
            for span in spans:
                groups.setdefault(span.name, []).append(span)
            return groups

        def emit(spans: List[Span], depth: int) -> None:
            for name, group in aggregate(spans).items():
                wall = sum(s.duration_s for s in group)
                share = 100.0 * wall / total if total else 0.0
                label = "  " * depth + name
                lines.append(
                    f"{label:<44s} {len(group):>6d} {1e3 * wall:>12.3f} {share:>6.1f}%"
                )
                children = [c for s in group for c in s.children]
                if children:
                    emit(children, depth + 1)

        emit(self.roots, 0)
        if len(lines) == 1:
            lines.append("(no spans recorded)")
        return "\n".join(lines)
