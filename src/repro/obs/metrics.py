"""Process-local metrics: counters, gauges, and histograms/timers.

A :class:`MetricsRegistry` hands out named instruments; a disabled
registry (the default) hands out shared no-op instruments and registers
nothing, so instrumented hot paths cost one attribute check per call and
the registry snapshot stays empty.  Snapshots are plain dicts (JSON-ready)
so benchmark and CLI output can be diffed across PRs.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing count (events, cycles, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    # ``add`` reads better for byte/cycle totals; same operation.
    add = inc


class Gauge:
    """Last-written value (progress fraction, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


#: Log-spaced bucket layout shared by every histogram: 16 buckets per
#: decade across 1e-9 .. 1e9 (plus underflow/overflow), so any positive
#: observation lands in a bucket whose bounds are within ~±7.5% of it.
_BUCKETS_PER_DECADE = 16
_MIN_EXP = -9
_MAX_EXP = 9
_LOG_BUCKETS = (_MAX_EXP - _MIN_EXP) * _BUCKETS_PER_DECADE


class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean + quantiles).

    Keeps scalar aggregates plus a fixed array of log-spaced bucket
    counts rather than raw samples, so unbounded call counts (e.g. one
    observation per simulated layer) never grow memory while p50/p95/p99
    stay answerable to bucket resolution (~±7.5%).  ``time()`` returns a
    context manager that observes elapsed wall seconds, making any
    histogram usable as a timer.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # [underflow (incl. <= 0), log buckets..., overflow]
        self.buckets = [0] * (_LOG_BUCKETS + 2)

    @staticmethod
    def _bucket_index(value: float) -> int:
        if value <= 10.0 ** _MIN_EXP:
            return 0
        position = (math.log10(value) - _MIN_EXP) * _BUCKETS_PER_DECADE
        index = int(position) + 1
        return min(index, _LOG_BUCKETS + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[self._bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) from the bucket counts.

        Accurate to the log-bucket resolution; always clamped into the
        exact observed [min, max] envelope, so q=0 / q=1 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        estimate = self.max
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= target:
                if index == 0:
                    estimate = self.min
                elif index == _LOG_BUCKETS + 1:
                    estimate = self.max
                else:
                    low = 10.0 ** (_MIN_EXP + (index - 1) / _BUCKETS_PER_DECADE)
                    high = 10.0 ** (_MIN_EXP + index / _BUCKETS_PER_DECADE)
                    estimate = math.sqrt(low * high)
                break
        return min(max(estimate, self.min), self.max)

    def time(self) -> "_HistogramTimer":
        return _HistogramTimer(self)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _HistogramTimer:
    """``with histogram.time():`` — observes elapsed seconds on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NoopInstrument:
    """Shared sink for every instrument call while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    add = inc

    def set(self, value: float) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NoopInstrument":
        return self

    def __enter__(self) -> "_NoopInstrument":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP = _NoopInstrument()


class MetricsRegistry:
    """Named instruments for one process (or one run, when reset between).

    Disabled (the default), every accessor returns the shared no-op
    instrument and the registry records nothing; ``snapshot()`` stays
    empty.  Enabled, instruments are created on first use and accumulate
    until :meth:`reset`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All recorded values as a plain nested dict (JSON-ready)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
