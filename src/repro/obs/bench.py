"""``repro.obs.bench`` — the recorded performance trajectory.

ROADMAP item 2 (vectorize the RK4/cycle hot paths) needs *evidence*: a
committed baseline to prove any speedup against and a regression gate to
keep accidental slowdowns out.  This module is that substrate:

* :func:`run_benchmarks` executes the ``benchmarks/bench_*.py`` suite
  (or a named subset) under pytest-benchmark in a subprocess, with the
  ``repro.obs`` metrics session enabled, and folds the per-benchmark
  wall-time stats plus the aggregate obs counters (simulated cycles,
  MACs, solver steps, cache hits, per-test timing histograms) into one
  schema-versioned document;
* :func:`write_document` stamps it as ``BENCH_<git-sha>.json`` at the
  repo root, so the perf trajectory is a tracked artifact — every
  subsequent perf PR records a new point next to the old ones;
* :func:`compare_documents` renders thresholded per-benchmark verdicts
  (``regression`` / ``improvement`` / ``ok``) between two recordings;
  the CLI (``supernpu bench compare``) exits nonzero on any regression.

Verdicts use each benchmark's **min** wall time (the most noise-robust
statistic pytest-benchmark reports); counters ride along for context
but are informational — their totals scale with how many rounds the
benchmark harness chose to run.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, SimulationError
from repro.obs.manifest import RunManifest

#: Bump when the BENCH document layout changes meaning.
#: v2 adds ``label`` (human-chosen trajectory-point name) and ``hotspot``
#: (host-time profile summary of the whole bench session); both are
#: additive, so v1 documents remain readable (see COMPATIBLE_SCHEMAS).
BENCH_SCHEMA_VERSION = 2

#: Older document schemas :func:`load_document` still accepts.
COMPATIBLE_SCHEMAS = (1, 2)

BENCH_KIND = "supernpu-bench"
BENCH_PREFIX = "BENCH_"

#: Environment variables the benchmarks/conftest.py hotspot fixture honors.
HOTSPOT_OUT_ENV = "SUPERNPU_BENCH_HOTSPOT_OUT"
HOTSPOT_MODE_ENV = "SUPERNPU_BENCH_HOTSPOT_MODE"
HOTSPOT_HZ_ENV = "SUPERNPU_BENCH_HOTSPOT_HZ"

#: Named benchmark subsets (file stems under ``benchmarks/``).
#: ``smoke`` is the CI gate: the fastest representative slice of the
#: figure/table suite, a few seconds end to end.
SUBSETS: Dict[str, Optional[Tuple[str, ...]]] = {
    "all": None,  # every bench_*.py
    "smoke": (
        "bench_table1_setup",
        "bench_table2_batch",
        "bench_fig05_network",
        "bench_fig07_feedback",
        "bench_fig13_validation",
    ),
    "figures": (
        "bench_fig05_network", "bench_fig07_feedback",
        "bench_fig08_duplication", "bench_fig13_validation",
        "bench_fig15_cycle_breakdown", "bench_fig17_roofline",
        "bench_fig20_buffer_opt", "bench_fig21_resource_balancing",
        "bench_fig22_registers", "bench_fig23_performance",
    ),
    "ablation": (
        "bench_ablation_bandwidth", "bench_ablation_bitserial",
        "bench_ablation_cooling", "bench_ablation_dataflow",
        "bench_ablation_features", "bench_ablation_scaling",
        "bench_ablation_training", "bench_ablation_variation",
    ),
    "extensions": (
        "bench_extension_energy", "bench_extension_latency",
        "bench_extension_multibatch", "bench_extension_transformer",
    ),
    # The vectorized inner loops (jsim RK4, systolic dataflows) plus the
    # end-to-end figure they feed; both benchmark files honor the
    # SUPERNPU_JSIM_SOLVER=reference / SUPERNPU_SYSTOLIC=stepped switches
    # for before/after recordings on identical physics.
    "hotpath": (
        "bench_jsim_solver",
        "bench_functional_systolic",
        "bench_fig23_performance",
    ),
}


def repo_root(explicit: Optional[Union[str, Path]] = None) -> Path:
    """The repository root: the directory holding ``benchmarks/``.

    Resolution order: an explicit argument, the source checkout this
    module was imported from (``src/repro/obs/bench.py`` → three levels
    up), then the current working directory.
    """
    if explicit is not None:
        return Path(explicit).expanduser().resolve()
    source_root = Path(__file__).resolve().parents[3]
    if (source_root / "benchmarks").is_dir():
        return source_root
    return Path.cwd()


def git_sha(root: Optional[Union[str, Path]] = None, short: bool = True) -> str:
    """The checkout's HEAD sha (short by default), or ``"unknown"``."""
    command = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        proc = subprocess.run(
            command, cwd=str(repo_root(root)), capture_output=True,
            text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def bench_files(subset: str = "all",
                root: Optional[Union[str, Path]] = None) -> List[Path]:
    """Resolve a subset name (or comma-separated stem fragments) to files."""
    bench_dir = repo_root(root) / "benchmarks"
    available = sorted(bench_dir.glob("bench_*.py"))
    if not available:
        raise ConfigError(
            f"no bench_*.py files under {bench_dir}",
            code="bench.no_benchmarks", path=str(bench_dir),
        )
    stems = SUBSETS.get(subset)
    if subset in SUBSETS:
        if stems is None:
            return available
        by_stem = {path.stem: path for path in available}
        missing = [stem for stem in stems if stem not in by_stem]
        if missing:
            raise ConfigError(
                f"subset {subset!r} names missing benchmarks: {missing}",
                code="bench.unknown_benchmark", missing=missing,
            )
        return [by_stem[stem] for stem in stems]
    # Comma-separated fragments, each matched as a stem substring.
    selected: List[Path] = []
    for fragment in (token.strip() for token in subset.split(",")):
        if not fragment:
            continue
        matches = [p for p in available if fragment in p.stem]
        if not matches:
            raise ConfigError(
                f"no benchmark matches {fragment!r}; "
                f"known subsets: {sorted(SUBSETS)}",
                code="bench.unknown_benchmark", fragment=fragment,
            )
        selected.extend(m for m in matches if m not in selected)
    return selected


def default_bench_path(root: Optional[Union[str, Path]] = None,
                       sha: Optional[str] = None,
                       label: Optional[str] = None) -> Path:
    """Where a recording lands: ``BENCH_<label>.json`` else ``BENCH_<sha>.json``."""
    base = repo_root(root)
    return base / f"{BENCH_PREFIX}{label or sha or git_sha(base)}.json"


# -- recording ---------------------------------------------------------------

def run_benchmarks(subset: str = "all", *,
                   root: Optional[Union[str, Path]] = None,
                   min_rounds: int = 3,
                   max_time_s: float = 0.5,
                   timeout_s: float = 1800.0,
                   label: Optional[str] = None,
                   hotspot_mode: Optional[str] = None,
                   hotspot_hz: float = 97.0,
                   pytest_args: Sequence[str] = ()) -> Dict[str, Any]:
    """Run the suite in a pytest subprocess; returns the BENCH document.

    The subprocess inherits this interpreter and a ``PYTHONPATH``
    pointing at the source tree, runs with ``repro.obs`` metrics routed
    to a temporary file (the benchmark conftest honors
    ``SUPERNPU_BENCH_METRICS_OUT``), and writes pytest-benchmark's raw
    stats JSON alongside; both are folded into the returned document.

    ``label`` names the trajectory point (sets the default filename to
    ``BENCH_<label>.json``).  ``hotspot_mode`` ("sampling" or "tracing")
    asks the benchmark conftest to profile the whole session host-side
    (``SUPERNPU_BENCH_HOTSPOT_*`` env vars); the resulting summary and
    collapsed stacks fold into the document's ``hotspot`` field.
    """
    if min_rounds < 1:
        raise ConfigError("min_rounds must be >= 1",
                          code="bench.invalid_rounds", min_rounds=min_rounds)
    base = repo_root(root)
    files = bench_files(subset, base)
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="supernpu-bench-") as scratch:
        raw_path = Path(scratch) / "pytest-benchmark.json"
        metrics_path = Path(scratch) / "bench-metrics.json"
        hotspot_path = Path(scratch) / "bench-hotspot.json"
        env = dict(os.environ)
        env["SUPERNPU_BENCH_METRICS_OUT"] = str(metrics_path)
        if hotspot_mode is not None:
            env[HOTSPOT_OUT_ENV] = str(hotspot_path)
            env[HOTSPOT_MODE_ENV] = hotspot_mode
            env[HOTSPOT_HZ_ENV] = str(hotspot_hz)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        command = [
            sys.executable, "-m", "pytest",
            *[str(path) for path in files],
            "-q", "-p", "no:cacheprovider",
            f"--benchmark-min-rounds={min_rounds}",
            f"--benchmark-max-time={max_time_s}",
            "--benchmark-warmup=off",
            f"--benchmark-json={raw_path}",
            *pytest_args,
        ]
        try:
            proc = subprocess.run(
                command, cwd=str(base), env=env, capture_output=True,
                text=True, timeout=timeout_s,
            )
        except subprocess.TimeoutExpired as error:
            raise SimulationError(
                f"benchmark run exceeded {timeout_s:g}s",
                code="bench.timeout", subset=subset,
            ) from error
        if proc.returncode != 0 or not raw_path.is_file():
            tail = "\n".join((proc.stdout or "").splitlines()[-15:])
            raise SimulationError(
                f"benchmark run failed (pytest exit {proc.returncode})",
                code="bench.run_failed",
                hint=tail or "re-run with the same files under pytest -x",
                subset=subset,
            )
        raw = json.loads(raw_path.read_text(encoding="utf-8"))
        counters: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        if metrics_path.is_file():
            metrics_doc = json.loads(metrics_path.read_text(encoding="utf-8"))
            counters = metrics_doc.get("metrics", {}).get("counters", {})
            histograms = metrics_doc.get("metrics", {}).get("histograms", {})
        hotspot_doc: Optional[Dict[str, Any]] = None
        if hotspot_mode is not None and hotspot_path.is_file():
            try:
                hotspot_doc = json.loads(hotspot_path.read_text(encoding="utf-8"))
            except ValueError:
                hotspot_doc = None
    wall = time.perf_counter() - started

    benchmarks: Dict[str, Dict[str, Any]] = {}
    for record in raw.get("benchmarks", []):
        name = record.get("fullname") or record.get("name")
        if name.startswith("benchmarks/"):
            name = name[len("benchmarks/"):]
        stats = record.get("stats", {})
        benchmarks[name] = {
            "min_s": stats.get("min"),
            "max_s": stats.get("max"),
            "mean_s": stats.get("mean"),
            "median_s": stats.get("median"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
            "iterations": stats.get("iterations"),
        }
    if not benchmarks:
        raise SimulationError(
            "pytest-benchmark recorded no benchmarks",
            code="bench.empty",
            hint="is pytest-benchmark installed and enabled?", subset=subset,
        )

    sha = git_sha(base)
    manifest = RunManifest.capture(
        "bench", wall_time_s=wall, subset=subset, git_sha=sha,
        benchmarks=len(benchmarks),
    )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "git_sha": sha,
        "subset": subset,
        "label": label,
        "created_unix": time.time(),
        "settings": {"min_rounds": min_rounds, "max_time_s": max_time_s},
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "manifest": manifest.to_dict(),
        "benchmarks": benchmarks,
        "counters": counters,
        "histograms": histograms,
        "hotspot": hotspot_doc,
    }


def write_document(document: Dict[str, Any],
                   path: Optional[Union[str, Path]] = None,
                   root: Optional[Union[str, Path]] = None) -> Path:
    """Write one BENCH document.

    Default path: ``BENCH_<label>.json`` when the document carries a
    label, else ``BENCH_<sha>.json`` — both at the repo root.
    """
    if path is None:
        path = default_bench_path(root, document.get("git_sha"),
                                  document.get("label"))
    path = Path(path).expanduser()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read + validate one BENCH document."""
    path = Path(path).expanduser()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(
            f"no such BENCH file: {path}", code="bench.missing_file",
            hint="record one with 'supernpu bench run'", path=str(path),
        ) from None
    except (OSError, ValueError) as error:
        raise ConfigError(
            f"unreadable BENCH file {path}: {error}",
            code="bench.corrupt_file", path=str(path),
        ) from error
    if (not isinstance(document, dict)
            or document.get("kind") != BENCH_KIND
            or document.get("schema") not in COMPATIBLE_SCHEMAS):
        raise ConfigError(
            f"{path} is not a schema-{'/'.join(map(str, COMPATIBLE_SCHEMAS))} "
            f"BENCH document",
            code="bench.wrong_schema", path=str(path),
        )
    return document


def find_baseline(root: Optional[Union[str, Path]] = None,
                  exclude: Sequence[Union[str, Path]] = ()) -> Optional[Path]:
    """The newest committed ``BENCH_*.json`` at the repo root, if any."""
    base = repo_root(root)
    excluded = {Path(p).expanduser().resolve() for p in exclude}
    candidates: List[Tuple[float, Path]] = []
    for path in base.glob(f"{BENCH_PREFIX}*.json"):
        if path.resolve() in excluded:
            continue
        try:
            document = load_document(path)
        except ConfigError:
            continue
        candidates.append((document.get("created_unix", 0.0), path))
    if not candidates:
        return None
    return max(candidates)[1]


# -- comparison --------------------------------------------------------------

@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's verdict between two recordings."""

    name: str
    base_s: Optional[float]
    new_s: Optional[float]
    ratio: Optional[float]
    verdict: str  # "regression" | "improvement" | "ok" | "added" | "missing"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "base_s": self.base_s, "new_s": self.new_s,
            "ratio": self.ratio, "verdict": self.verdict,
        }


@dataclass(frozen=True)
class BenchComparison:
    """Thresholded comparison of two BENCH documents."""

    base_sha: str
    new_sha: str
    threshold: float
    deltas: Tuple[BenchDelta, ...]

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        """True when no shared benchmark regressed past the threshold."""
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_sha": self.base_sha,
            "new_sha": self.new_sha,
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _wall_s(record: Dict[str, Any]) -> Optional[float]:
    """The verdict statistic of one benchmark record (min, else mean)."""
    value = record.get("min_s")
    if value is None:
        value = record.get("mean_s")
    return value


def compare_documents(base: Dict[str, Any], new: Dict[str, Any],
                      threshold: float = 1.5) -> BenchComparison:
    """Per-benchmark verdicts: new/base wall-time ratio vs ``threshold``.

    A benchmark regresses when its ratio exceeds ``threshold`` and
    improves below ``1/threshold``; benchmarks present on only one side
    are reported as ``added`` / ``missing`` (informational — a renamed
    or new benchmark must not fail the gate).
    """
    if threshold <= 1.0:
        raise ConfigError("threshold must be > 1.0",
                          code="bench.invalid_threshold", threshold=threshold)
    base_benchmarks = base.get("benchmarks", {})
    new_benchmarks = new.get("benchmarks", {})
    deltas: List[BenchDelta] = []
    for name in sorted(set(base_benchmarks) | set(new_benchmarks)):
        old_record = base_benchmarks.get(name)
        new_record = new_benchmarks.get(name)
        if old_record is None:
            deltas.append(BenchDelta(name, None, _wall_s(new_record), None, "added"))
            continue
        if new_record is None:
            deltas.append(BenchDelta(name, _wall_s(old_record), None, None, "missing"))
            continue
        old_s, new_s = _wall_s(old_record), _wall_s(new_record)
        if not old_s or new_s is None:
            deltas.append(BenchDelta(name, old_s, new_s, None, "ok"))
            continue
        ratio = new_s / old_s
        if ratio > threshold:
            verdict = "regression"
        elif ratio < 1.0 / threshold:
            verdict = "improvement"
        else:
            verdict = "ok"
        deltas.append(BenchDelta(name, old_s, new_s, ratio, verdict))
    return BenchComparison(
        base_sha=str(base.get("git_sha", "?")),
        new_sha=str(new.get("git_sha", "?")),
        threshold=threshold,
        deltas=tuple(deltas),
    )
