"""Host-time hotspot profiling (``repro.obs.hotspot``).

The rest of ``repro.obs`` attributes *simulated* cycles (timeline,
bottleneck, roofline) and *end-to-end* wall time (bench).  This module
closes the remaining gap: which **Python frames** burn the host's wall
clock, so the RK4 / cycle-model inner loops named by ROADMAP item 2 can
be located before a numpy rewrite and re-checked afterwards.

Two stdlib-only collection modes, one data model:

* ``sampling`` — a daemon thread walks ``sys._current_frames()`` at a
  configurable rate (default ~97 Hz; a prime, so it does not alias with
  common periodic work).  Near-zero overhead, statistically accurate for
  runs lasting tens of milliseconds or more.
* ``tracing`` — a deterministic ``sys.setprofile`` hook recording exact
  per-function call counts and self/cumulative wall time.  Higher
  overhead, but the *set of frames and call counts* is bitwise-stable
  across runs of a fixed workload, which makes it testable and the right
  mode for sub-millisecond commands.

Both feed a :class:`HotspotProfile`: per-stack sample weights that
aggregate into per-function self/cumulative time, export as collapsed
stacks (``flamegraph.pl`` format), render as a top-N terminal report,
serialize to/from JSON (so pool workers can ship samples to the parent
in a sidecar, see ``repro.core.jobs``), and join with the cycle-domain
attribution of ``repro.simulator.attribution`` so each simulated phase
(compute / preparation / dram) maps to the host frames that model it.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FrameKey",
    "FunctionStat",
    "HotspotProfile",
    "HotspotProfiler",
    "active_profiler",
    "absorb",
    "classify_frame",
    "group_phase_fractions",
    "join_with_phases",
]

# (function name, file path, first line of the function)
FrameKey = Tuple[str, str, int]

# Stack root→leaf, as frame keys.
StackKey = Tuple[FrameKey, ...]

MODES = ("sampling", "tracing")

DEFAULT_SAMPLE_HZ = 97.0
DEFAULT_MAX_DEPTH = 64

PROFILE_SCHEMA_VERSION = 1


def _frame_label(key: FrameKey) -> str:
    name, filename, lineno = key
    return f"{name} ({_short_path(filename)}:{lineno})"


def _short_path(path: str) -> str:
    """Trim a file path to its interesting tail (``repro/...`` when possible)."""
    norm = path.replace("\\", "/")
    for marker in ("/repro/", "/tests/", "/benchmarks/", "/examples/"):
        idx = norm.rfind(marker)
        if idx >= 0:
            return norm[idx + 1:]
    parts = norm.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else norm


# -- cycle-domain join ---------------------------------------------------

# File basename (within repro/) → simulated phase group.  The groups match
# the compute/preparation/dram partition used by `supernpu bottleneck`.
_PHASE_BY_FILE = {
    "simulator/memory.py": "dram",
    "simulator/mapping.py": "preparation",
    "simulator/buffers.py": "preparation",
    "simulator/engine.py": "compute",
    "simulator/trace.py": "compute",
    "simulator/pe.py": "compute",
    "simulator/mac.py": "compute",
    "jsim/solver.py": "compute",
    "jsim/circuit.py": "compute",
}

# Phases reported by repro.simulator.attribution → the three bound groups.
_PHASE_GROUPS = {
    "compute": ("compute",),
    "preparation": ("weight_load", "ifmap_prep", "psum_move", "activation_transfer"),
    "dram": ("dram_stall",),
}


def classify_frame(key: FrameKey) -> Tuple[str, Optional[str]]:
    """Return ``(domain, phase_group)`` for a frame.

    ``domain`` is the ``repro`` subpackage (``simulator``, ``jsim``,
    ``estimator``, ...) or ``"other"``; ``phase_group`` is one of
    ``compute`` / ``preparation`` / ``dram`` when the file models a
    simulated phase, else ``None``.
    """
    norm = key[1].replace("\\", "/")
    idx = norm.rfind("/repro/")
    if idx < 0:
        return "other", None
    tail = norm[idx + len("/repro/"):]
    domain = tail.split("/", 1)[0] if "/" in tail else "repro"
    return domain, _PHASE_BY_FILE.get(tail)


def group_phase_fractions(summary_fractions: Dict[str, float]) -> Dict[str, float]:
    """Collapse attribution phase fractions into compute/preparation/dram."""
    grouped = {}
    for group, phases in _PHASE_GROUPS.items():
        grouped[group] = sum(summary_fractions.get(phase, 0.0) for phase in phases)
    return grouped


def join_with_phases(profile: "HotspotProfile",
                     summary_fractions: Dict[str, float],
                     top_frames: int = 3) -> List[Dict[str, Any]]:
    """Join host self-time with simulated-cycle phase fractions.

    One row per bound group (compute / preparation / dram) plus an
    ``unattributed`` row: the fraction of *simulated* cycles the phase
    accounts for, the *host* self-seconds spent in frames that model it,
    and the hottest such frames.  This is the evidence trail for "which
    loop deserves vectorizing": a phase that dominates simulated cycles
    but burns little host time is already cheap to model; one that
    dominates both is the target.
    """
    grouped = group_phase_fractions(summary_fractions)
    by_phase: Dict[Optional[str], Dict[FrameKey, float]] = {}
    for stat in profile.function_stats():
        _, phase = classify_frame(stat.key)
        by_phase.setdefault(phase, {})[stat.key] = stat.self_s
    rows: List[Dict[str, Any]] = []
    for group in ("compute", "preparation", "dram"):
        frames = by_phase.get(group, {})
        hottest = sorted(frames.items(), key=lambda kv: (-kv[1], kv[0]))[:top_frames]
        rows.append({
            "phase": group,
            "cycle_fraction": grouped.get(group, 0.0),
            "host_self_s": sum(frames.values()),
            "frames": [_frame_label(key) for key, _ in hottest],
        })
    other = by_phase.get(None, {})
    rows.append({
        "phase": "unattributed",
        "cycle_fraction": 0.0,
        "host_self_s": sum(other.values()),
        "frames": [
            _frame_label(key)
            for key, _ in sorted(other.items(), key=lambda kv: (-kv[1], kv[0]))[:top_frames]
        ],
    })
    return rows


# -- profile data model --------------------------------------------------

@dataclass
class FunctionStat:
    """Aggregated per-function host time."""

    key: FrameKey
    self_s: float = 0.0
    cum_s: float = 0.0
    calls: int = 0
    samples: int = 0

    @property
    def label(self) -> str:
        return _frame_label(self.key)


class HotspotProfile:
    """Aggregated stack samples with export, merge and serialization.

    The core storage is ``stack_seconds`` / ``stack_counts``: for every
    observed root→leaf stack, the summed self-time attributed to its leaf
    and the number of samples (sampling) or returns (tracing) observed.
    Everything else — per-function stats, collapsed stacks, reports — is
    derived.
    """

    def __init__(self, mode: str = "sampling", interval_s: float = 0.0) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown hotspot mode {mode!r}; expected one of {MODES}")
        self.mode = mode
        self.interval_s = interval_s
        self.duration_s = 0.0
        self.samples = 0
        self.stack_seconds: Dict[StackKey, float] = {}
        self.stack_counts: Dict[StackKey, int] = {}
        self.calls: Dict[FrameKey, int] = {}
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def add(self, stack: StackKey, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of self-time to ``stack``'s leaf frame."""
        if not stack:
            return
        with self._lock:
            self.stack_seconds[stack] = self.stack_seconds.get(stack, 0.0) + seconds
            self.stack_counts[stack] = self.stack_counts.get(stack, 0) + count

    def add_call(self, key: FrameKey, count: int = 1) -> None:
        with self._lock:
            self.calls[key] = self.calls.get(key, 0) + count

    def merge(self, other: "HotspotProfile") -> None:
        """Fold another profile's samples into this one (worker merge)."""
        with self._lock:
            for stack, seconds in other.stack_seconds.items():
                self.stack_seconds[stack] = self.stack_seconds.get(stack, 0.0) + seconds
            for stack, count in other.stack_counts.items():
                self.stack_counts[stack] = self.stack_counts.get(stack, 0) + count
            for key, count in other.calls.items():
                self.calls[key] = self.calls.get(key, 0) + count
            self.samples += other.samples

    # -- derived views --------------------------------------------------
    def function_stats(self) -> List[FunctionStat]:
        """Per-function self/cumulative time, sorted by self-time desc.

        Self time sums the leaf attributions; cumulative time counts each
        stack once per *distinct function on it* (so recursion does not
        double-count).
        """
        with self._lock:
            stacks = dict(self.stack_seconds)
            counts = dict(self.stack_counts)
            calls = dict(self.calls)
        stats: Dict[FrameKey, FunctionStat] = {}
        for stack, seconds in stacks.items():
            leaf = stack[-1]
            stat = stats.setdefault(leaf, FunctionStat(leaf))
            stat.self_s += seconds
            stat.samples += counts.get(stack, 0)
            for key in set(stack):
                stats.setdefault(key, FunctionStat(key)).cum_s += seconds
        for key, count in calls.items():
            stats.setdefault(key, FunctionStat(key)).calls = count
        return sorted(stats.values(), key=lambda s: (-s.self_s, -s.cum_s, s.key))

    def top(self, n: int = 10) -> List[FunctionStat]:
        return self.function_stats()[:n]

    def total_seconds(self) -> float:
        with self._lock:
            return sum(self.stack_seconds.values())

    def collapsed(self) -> str:
        """Collapsed-stack export, one ``a;b;c value`` line per stack.

        Directly consumable by ``flamegraph.pl`` / speedscope.  Values
        are integer microseconds of leaf self-time; stacks are sorted
        lexically so the output is deterministic for a fixed profile.
        """
        with self._lock:
            stacks = dict(self.stack_seconds)
        lines = []
        for stack in sorted(stacks):
            frames = ";".join(
                f"{name} {_short_path(filename)}:{lineno}"
                for name, filename, lineno in stack
            )
            micros = int(round(stacks[stack] * 1e6))
            lines.append(f"{frames} {micros}")
        return "\n".join(lines)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "schema_version": PROFILE_SCHEMA_VERSION,
                "mode": self.mode,
                "interval_s": self.interval_s,
                "duration_s": self.duration_s,
                "samples": self.samples,
                "stacks": [
                    {
                        "frames": [list(frame) for frame in stack],
                        "seconds": seconds,
                        "count": self.stack_counts.get(stack, 0),
                    }
                    for stack, seconds in sorted(self.stack_seconds.items())
                ],
                "calls": [
                    {"frame": list(key), "count": count}
                    for key, count in sorted(self.calls.items())
                ],
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HotspotProfile":
        profile = cls(mode=data.get("mode", "sampling"),
                      interval_s=data.get("interval_s", 0.0))
        profile.duration_s = data.get("duration_s", 0.0)
        profile.samples = data.get("samples", 0)
        for entry in data.get("stacks", []):
            stack = tuple(
                (str(frame[0]), str(frame[1]), int(frame[2]))
                for frame in entry["frames"]
            )
            profile.stack_seconds[stack] = float(entry.get("seconds", 0.0))
            profile.stack_counts[stack] = int(entry.get("count", 0))
        for entry in data.get("calls", []):
            frame = entry["frame"]
            profile.calls[(str(frame[0]), str(frame[1]), int(frame[2]))] = int(entry["count"])
        return profile

    def summary(self, top_n: int = 5) -> Dict[str, Any]:
        """Compact summary for RunRegistry entries and BENCH documents."""
        stats = self.function_stats()
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 6),
            "samples": self.samples,
            "functions": len(stats),
            "top": [
                {
                    "function": stat.key[0],
                    "file": _short_path(stat.key[1]),
                    "line": stat.key[2],
                    "self_s": round(stat.self_s, 6),
                    "cum_s": round(stat.cum_s, 6),
                    "calls": stat.calls,
                }
                for stat in stats[:top_n]
            ],
        }

    # -- reporting ------------------------------------------------------
    def report(self, top_n: int = 10,
               phase_fractions: Optional[Dict[str, float]] = None) -> str:
        """Human-readable top-N hotspot table (stderr-destined)."""
        stats = self.function_stats()
        total = sum(stat.self_s for stat in stats)
        header = (f"hotspot [{self.mode}]: {len(stats)} functions, "
                  f"{self.samples} samples over {self.duration_s * 1e3:.1f} ms host time")
        lines = [header,
                 f"{'self ms':>10s} {'self %':>7s} {'cum ms':>10s} {'calls':>8s}  function"]
        for stat in stats[:top_n]:
            share = 100.0 * stat.self_s / total if total else 0.0
            calls = str(stat.calls) if stat.calls else "-"
            lines.append(
                f"{stat.self_s * 1e3:>10.3f} {share:>6.1f}% {stat.cum_s * 1e3:>10.3f} "
                f"{calls:>8s}  {stat.label}"
            )
        if len(stats) == 0:
            lines.append("(no samples collected — try --hotspot-mode tracing "
                         "or a longer workload)")
        # Stdlib/harness frames (argparse, dataclasses.asdict, ...) often
        # crowd the global ranking on short commands; a framework-only
        # sub-ranking keeps the simulator's inner loops visible.
        repro_stats = [stat for stat in stats
                       if classify_frame(stat.key)[0] != "other"]
        if repro_stats and repro_stats[:5] != stats[:5]:
            lines.append("")
            lines.append("top repro frames (framework code only):")
            for stat in repro_stats[:5]:
                share = 100.0 * stat.self_s / total if total else 0.0
                calls = str(stat.calls) if stat.calls else "-"
                lines.append(
                    f"{stat.self_s * 1e3:>10.3f} {share:>6.1f}% "
                    f"{stat.cum_s * 1e3:>10.3f} {calls:>8s}  {stat.label}"
                )
        if phase_fractions is not None:
            lines.append("")
            lines.append("cycle-domain join (simulated fraction vs host self time):")
            lines.append(f"{'phase':<14s} {'sim %':>7s} {'host ms':>10s}  hottest frames")
            for row in join_with_phases(self, phase_fractions):
                frames = "; ".join(row["frames"]) if row["frames"] else "-"
                lines.append(
                    f"{row['phase']:<14s} {100.0 * row['cycle_fraction']:>6.1f}% "
                    f"{row['host_self_s'] * 1e3:>10.3f}  {frames}"
                )
        return "\n".join(lines)


# -- collectors ----------------------------------------------------------

#: This module's source path, used to keep profiler-internal frames out
#: of collected profiles.
_OWN_FILE = __file__


def _extract_stack(frame: Any, max_depth: int) -> StackKey:
    """Walk ``frame.f_back`` links into a root→leaf tuple of frame keys."""
    frames: List[FrameKey] = []
    while frame is not None and len(frames) < max_depth:
        code = frame.f_code
        frames.append((code.co_name, code.co_filename, code.co_firstlineno))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class _SamplerThread(threading.Thread):
    """Daemon thread attributing one interval of wall time per sample."""

    def __init__(self, profile: HotspotProfile, interval_s: float, max_depth: int) -> None:
        super().__init__(name="hotspot-sampler", daemon=True)
        self._profile = profile
        self._interval_s = interval_s
        self._max_depth = max_depth
        # NB: threading.Thread has a private _stop() method; don't shadow it.
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)

    def run(self) -> None:
        own = self.ident
        while not self._stop_event.wait(self._interval_s):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                stack = _extract_stack(frame, self._max_depth)
                if stack:
                    self._profile.add(stack, self._interval_s, 1)
            self._profile.samples += 1


class _TracingCollector:
    """Deterministic ``sys.setprofile`` collector for the calling thread."""

    def __init__(self, profile: HotspotProfile, max_depth: int) -> None:
        self._profile = profile
        self._max_depth = max_depth
        # Each entry: [frame key, entry perf_counter, accumulated child seconds]
        self._stack: List[List[Any]] = []

    def install(self) -> None:
        sys.setprofile(self._dispatch)

    def uninstall(self) -> None:
        sys.setprofile(None)
        # Frames still open when profiling stops get credited up to now.
        now = time.perf_counter()
        while self._stack:
            self._close_top(now)

    def _dispatch(self, frame: Any, event: str, arg: Any) -> None:
        if event == "call":
            code = frame.f_code
            key = (code.co_name, code.co_filename, code.co_firstlineno)
            if len(self._stack) < self._max_depth:
                self._stack.append([key, time.perf_counter(), 0.0])
        elif event == "return":
            # Returns from frames entered before install() find an empty
            # stack; ignore them.
            if self._stack:
                self._close_top(time.perf_counter())

    def _close_top(self, now: float) -> None:
        key, started, child_s = self._stack.pop()
        elapsed = now - started
        if self._stack:
            self._stack[-1][2] += elapsed
        if key[1] == _OWN_FILE:
            # The profiler's own teardown frames (stop/uninstall) are
            # mid-flight when the hook is removed; keep them out of the
            # profile so a fixed workload's frame set stays stable.
            return
        self_s = max(0.0, elapsed - child_s)
        path = tuple(entry[0] for entry in self._stack
                     if entry[0][1] != _OWN_FILE) + (key,)
        self._profile.add(path, self_s, 1)
        self._profile.add_call(key, 1)


class HotspotProfiler:
    """Start/stop wrapper around one collection run.

    Usable as a context manager::

        with HotspotProfiler(mode="tracing") as profiler:
            run_workload()
        print(profiler.profile.report(), file=sys.stderr)

    While running, the profiler registers itself as the process-ambient
    profiler (:func:`active_profiler`) so `repro.core.jobs` can forward
    the request to pool workers and :func:`absorb` their samples back.
    """

    def __init__(self, mode: str = "sampling",
                 sample_hz: float = DEFAULT_SAMPLE_HZ,
                 max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown hotspot mode {mode!r}; expected one of {MODES}")
        if sample_hz <= 0:
            raise ValueError(f"sample_hz must be positive, got {sample_hz}")
        self.mode = mode
        self.sample_hz = sample_hz
        self.max_depth = max_depth
        interval = 1.0 / sample_hz if mode == "sampling" else 0.0
        self.profile = HotspotProfile(mode=mode, interval_s=interval)
        self._sampler: Optional[_SamplerThread] = None
        self._tracer: Optional[_TracingCollector] = None
        self._started_at: Optional[float] = None

    def start(self) -> "HotspotProfiler":
        if self._started_at is not None:
            return self
        self._started_at = time.perf_counter()
        if self.mode == "sampling":
            self._sampler = _SamplerThread(self.profile, self.profile.interval_s,
                                           self.max_depth)
            self._sampler.start()
        else:
            self._tracer = _TracingCollector(self.profile, self.max_depth)
            self._tracer.install()
        _set_active(self)
        return self

    def stop(self) -> HotspotProfile:
        if self._started_at is None:
            return self.profile
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self._tracer is not None:
            self._tracer.uninstall()
            self._tracer = None
        self.profile.duration_s += time.perf_counter() - self._started_at
        self._started_at = None
        _set_active(None)
        return self.profile

    def __enter__(self) -> "HotspotProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# -- process-ambient profiler -------------------------------------------

_active: Optional[HotspotProfiler] = None


def _set_active(profiler: Optional[HotspotProfiler]) -> None:
    global _active
    _active = profiler


def active_profiler() -> Optional[HotspotProfiler]:
    """The profiler currently running in this process, if any."""
    return _active


def absorb(data: Dict[str, Any]) -> bool:
    """Merge a serialized worker profile into the active profiler.

    Returns False (and drops the data) when no profiler is running —
    worker sidecars are best-effort.
    """
    profiler = _active
    if profiler is None:
        return False
    profiler.profile.merge(HotspotProfile.from_dict(data))
    return True
