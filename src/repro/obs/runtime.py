"""Process-global observability runtime.

One :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracing.Tracer` per process, both **disabled by
default** so instrumented library code is a no-op unless a CLI flag,
benchmark fixture, or test turns observability on.

Hot-path usage::

    from repro import obs

    with obs.trace_span("simulate/layer", layer=name):
        ...
    obs.counter("sim.cycles").add(total)

Disabled, ``trace_span`` returns a shared no-op context manager and
``counter``/``gauge``/``histogram`` return a shared no-op instrument —
one flag check per call, no allocation, nothing recorded.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, _NOOP_SPAN

_registry = MetricsRegistry()
_tracer = Tracer()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-global span tracer."""
    return _tracer


def enabled() -> bool:
    """True when either metrics or tracing is active."""
    return _registry.enabled or _tracer.enabled


def enable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn observability on (both subsystems by default)."""
    if metrics:
        _registry.enable()
    if tracing:
        _tracer.enable()


def disable() -> None:
    _registry.disable()
    _tracer.disable()


def reset() -> None:
    """Drop all recorded metrics and spans (enabled flags unchanged)."""
    _registry.reset()
    _tracer.reset()


# -- hot-path shims -----------------------------------------------------
def trace_span(name: str, **attrs: Any):
    """Open a traced region; no-op context manager when tracing is off."""
    if not _tracer.enabled:
        return _NOOP_SPAN
    return _tracer.span(name, **attrs)


def trace_instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration span event; no-op when tracing is off."""
    if _tracer.enabled:
        _tracer.instant(name, **attrs)


def counter(name: str):
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)
