"""Live progress streaming for parallel sweeps.

A :class:`ProgressReporter` receives structured task-lifecycle events
from the job runner (:class:`repro.core.jobs.JobRunner`) — queued,
cached, started, finished, retried, timeout, pool_restart, degraded —
and turns the formerly silent fan-out into three synchronized views:

* a **live stderr line** (carriage-return rewritten on a terminal, plain
  throttled lines otherwise) with completion counts and an ETA derived
  from the completed-task rate;
* **span events**: every event becomes a zero-duration
  ``progress/<kind>`` instant in the global tracer (when tracing is on),
  so a sweep's trace shows *when* each task state change happened;
* **metrics**: ``progress.<kind>`` counters in the metrics registry.

The reporter only ever writes to its own stream (stderr by default), so
sweep *results* are bitwise-identical with or without progress enabled —
proven under chaos injection in ``tests/test_obs_progress.py``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional, TextIO

from repro.obs import runtime as _obs

#: Every event kind a runner can emit, in rough lifecycle order.
EVENT_KINDS = (
    "queued",        # task entered the sweep (cache miss, will execute)
    "cached",        # task served from the result cache
    "started",       # task submitted to a worker / started in-process
    "finished",      # task completed and its payload was recorded
    "retried",       # transient failure; task re-queued under the retry budget
    "timeout",       # task exceeded the per-task wall-clock limit
    "pool_restart",  # the process pool died and was abandoned/rebuilt
    "degraded",      # the runner fell back to serial execution
    "done",          # the sweep finished
)

#: Events that always render immediately, regardless of throttling.
_URGENT = frozenset(("retried", "timeout", "pool_restart", "degraded", "done"))


@dataclass(frozen=True)
class ProgressEvent:
    """One structured task-lifecycle event."""

    kind: str
    key: Optional[str] = None     #: task content key (sweep-level events: None)
    attempt: int = 0              #: failures so far for this task
    completed: int = 0            #: tasks done (cached + finished) at emit time
    total: int = 0                #: tasks in the sweep
    elapsed_s: float = 0.0        #: seconds since the sweep began
    eta_s: Optional[float] = None  #: estimated seconds to completion

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": self.key,
            "attempt": self.attempt,
            "completed": self.completed,
            "total": self.total,
            "elapsed_s": self.elapsed_s,
            "eta_s": self.eta_s,
        }


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


@dataclass
class ProgressReporter:
    """Collects runner events, renders a live line, records obs events.

    ``stream=None`` keeps the reporter silent (events are still recorded
    in :attr:`events` and exported through obs), which is what the
    determinism tests use.  Rendering is suppressed for sweeps smaller
    than ``min_tasks`` so a single ``simulate`` stays quiet.
    """

    stream: Optional[TextIO] = None
    min_tasks: int = 2
    interval_s: float = 0.2
    events: List[ProgressEvent] = field(default_factory=list)

    # per-sweep state
    total: int = 0
    completed: int = 0
    cached: int = 0
    finished: int = 0
    retried: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    degraded: bool = False

    _started_at: float = 0.0
    _last_render: float = 0.0
    _line_width: int = 0
    _line_open: bool = False

    def begin(self, total: int) -> None:
        """Start a new sweep of ``total`` tasks (resets per-sweep state)."""
        self.total = total
        self.completed = self.cached = self.finished = 0
        self.retried = self.timeouts = self.pool_restarts = 0
        self.degraded = False
        self._started_at = time.perf_counter()
        self._last_render = 0.0
        self._line_width = 0
        self._line_open = False

    # -- event intake ---------------------------------------------------
    def emit(self, kind: str, key: Optional[str] = None, attempt: int = 0) -> None:
        """Record one event and (maybe) refresh the rendered line."""
        if kind == "cached":
            self.cached += 1
            self.completed += 1
        elif kind == "finished":
            self.finished += 1
            self.completed += 1
        elif kind == "retried":
            self.retried += 1
        elif kind == "timeout":
            self.timeouts += 1
        elif kind == "pool_restart":
            self.pool_restarts += 1
        elif kind == "degraded":
            self.degraded = True
        elapsed = time.perf_counter() - self._started_at
        event = ProgressEvent(
            kind=kind, key=key, attempt=attempt,
            completed=self.completed, total=self.total,
            elapsed_s=elapsed, eta_s=self.eta_s(elapsed),
        )
        self.events.append(event)
        _obs.counter(f"progress.{kind}").inc()
        _obs.trace_instant(
            f"progress/{kind}",
            key=None if key is None else key[:12],
            completed=self.completed, total=self.total,
        )
        self._render(event)

    def done(self) -> None:
        """Close the sweep: emit the ``done`` event and finish the line."""
        self.emit("done")
        if self._line_open and self.stream is not None:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- ETA ------------------------------------------------------------
    def eta_s(self, elapsed_s: Optional[float] = None) -> Optional[float]:
        """Seconds to completion from the *executed*-task rate.

        Cache hits land instantly at sweep start, so the rate counts
        only tasks that actually ran; before the first one finishes
        there is no rate and the ETA is unknown (None).
        """
        if self.finished <= 0 or self.total <= 0:
            return None
        if elapsed_s is None:
            elapsed_s = time.perf_counter() - self._started_at
        if elapsed_s <= 0:
            return None
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        return remaining * (elapsed_s / self.finished)

    # -- rendering ------------------------------------------------------
    def status_line(self, event: Optional[ProgressEvent] = None) -> str:
        """The current one-line progress summary."""
        percent = 100.0 * self.completed / self.total if self.total else 100.0
        parts = [f"sweep {self.completed}/{self.total} ({percent:.0f}%)"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        if self.degraded:
            parts.append("degraded to serial")
        if self.completed < self.total:
            parts.append(f"ETA {_format_eta(self.eta_s())}")
        elif event is not None and event.kind == "done":
            parts.append(f"{event.elapsed_s:.1f}s")
        return " | ".join(parts)

    def _render(self, event: ProgressEvent) -> None:
        if self.stream is None or self.total < self.min_tasks:
            return
        now = time.perf_counter()
        if event.kind not in _URGENT and (now - self._last_render) < self.interval_s:
            return
        self._last_render = now
        line = self.status_line(event)
        try:
            interactive = self.stream.isatty()
        except (AttributeError, ValueError):
            interactive = False
        if interactive:
            padded = line.ljust(self._line_width)
            self._line_width = max(self._line_width, len(line))
            self.stream.write("\r" + padded)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


def auto_reporter(enabled: Optional[bool] = None,
                  stream: Optional[TextIO] = None) -> Optional[ProgressReporter]:
    """The CLI's reporter policy: explicit flag wins, else tty auto-detect.

    ``enabled=None`` enables progress only when the stream (stderr by
    default) is a terminal; ``True``/``False`` force it on/off.  Returns
    None when progress is off, which the runner treats as no-op.
    """
    stream = stream if stream is not None else sys.stderr
    if enabled is None:
        try:
            enabled = stream.isatty()
        except (AttributeError, ValueError):
            enabled = False
    if not enabled:
        return None
    return ProgressReporter(stream=stream)
