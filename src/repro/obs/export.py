"""File export for metrics snapshots and Chrome traces.

Both writers produce self-describing JSON: the metrics file wraps the
registry snapshot with its run manifest, and the trace file embeds the
manifest in the Chrome trace ``metadata`` block (ignored by viewers,
preserved for provenance).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import CycleTimeline
from repro.obs.tracing import Tracer
from repro.obs import runtime


def metrics_document(
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[RunManifest] = None,
) -> Dict[str, Any]:
    """The canonical metrics-file payload: ``{manifest, metrics}``."""
    registry = registry if registry is not None else runtime.metrics()
    return {
        "manifest": manifest.to_dict() if manifest else None,
        "metrics": registry.snapshot(),
    }


def write_metrics(
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[RunManifest] = None,
) -> Path:
    """Write the metrics snapshot (+ manifest) as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = metrics_document(registry, manifest)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def write_trace(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    manifest: Optional[RunManifest] = None,
) -> Path:
    """Write the span forest as Chrome trace-event JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tracer = tracer if tracer is not None else runtime.tracer()
    metadata = manifest.to_dict() if manifest else None
    path.write_text(tracer.to_chrome_trace_json(metadata=metadata, indent=2) + "\n")
    return path


def write_timeline(
    path: Union[str, Path],
    timeline: CycleTimeline,
    manifest: Optional[RunManifest] = None,
) -> Path:
    """Write a simulated-cycle timeline as Chrome trace-event JSON.

    Unlike :func:`write_trace` (wall-time spans from the global tracer),
    the timeline is an explicit per-run object whose timestamps are
    simulated time; it needs no global enable/disable lifecycle.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    metadata = manifest.to_dict() if manifest else None
    path.write_text(timeline.to_chrome_trace_json(metadata=metadata, indent=2) + "\n")
    return path
