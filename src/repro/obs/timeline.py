"""Simulated-cycle event timeline with Chrome trace export.

``repro.obs.tracing`` observes the Python process in *wall time*; this
module observes the modeled hardware in its own time domain.  A
:class:`CycleTimeline` records events keyed in **simulated cycles** —
per-layer spans, the on-chip phase sequence inside each layer (weight
load, ifmap preparation, psum movement, compute, activation transfer),
the concurrent DRAM transfer, and buffer-occupancy samples — and exports
them as Chrome trace-event JSON whose timestamps are **simulated time**
(cycles converted through the design's clock), so a run opens in
Perfetto as if it were a hardware waveform.

Time-domain convention: one cycle at ``frequency_ghz`` lasts
``1000 / frequency_ghz`` picoseconds; exported ``ts``/``dur`` are in
microseconds of *simulated* time (the trace-event unit), so the whole
trace spans ``total_cycles / (frequency_ghz * 1e3)`` µs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: On-chip phase order inside one layer (engine charge order).
PHASES = (
    "weight_load",
    "ifmap_prep",
    "psum_move",
    "compute",
    "activation_transfer",
)

#: Virtual "threads" of the modeled hardware, exported as Chrome tids.
TRACKS = {"layer": 1, "on_chip": 2, "dram": 3}


@dataclass(frozen=True)
class TimelineEvent:
    """One contiguous region of simulated time on one track."""

    name: str
    track: str
    start_cycle: int
    duration_cycles: int
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.track not in TRACKS:
            raise ValueError(f"unknown track {self.track!r}")
        if self.start_cycle < 0 or self.duration_cycles < 0:
            raise ValueError("event cycles must be non-negative")

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.duration_cycles


@dataclass(frozen=True)
class CounterSample:
    """One sampled counter value (e.g. buffer occupancy) at a cycle."""

    name: str
    cycle: int
    value: float


class CycleTimeline:
    """Simulated-cycle event recorder for one simulation run.

    The engine appends one :meth:`record_layer` call per layer; the
    timeline keeps a running cycle cursor (layers execute back to back)
    and lays out each layer's on-chip phases sequentially while the
    layer's DRAM transfer runs in parallel on its own track — exactly
    the engine's ``max(on_chip, dram)`` double-buffered DMA model.
    """

    def __init__(
        self,
        frequency_ghz: float,
        design: str = "",
        network: str = "",
    ) -> None:
        if frequency_ghz <= 0:
            raise ValueError("clock frequency must be positive")
        self.frequency_ghz = frequency_ghz
        self.design = design
        self.network = network
        self.events: List[TimelineEvent] = []
        self.counters: List[CounterSample] = []
        self.cursor = 0

    # -- time-domain conversions ---------------------------------------
    @property
    def cycle_ps(self) -> float:
        """Duration of one simulated cycle in picoseconds."""
        return 1e3 / self.frequency_ghz

    def cycles_to_ps(self, cycles: float) -> float:
        return cycles * self.cycle_ps

    def cycles_to_us(self, cycles: float) -> float:
        """Simulated microseconds (the Chrome trace ``ts`` unit)."""
        return cycles / (self.frequency_ghz * 1e3)

    @property
    def total_cycles(self) -> int:
        return self.cursor

    @property
    def span_us(self) -> float:
        """Total simulated time covered by the timeline, in µs."""
        return self.cycles_to_us(self.cursor)

    # -- recording ------------------------------------------------------
    def record_layer(self, result: Any, occupancy: Optional[Dict[str, float]] = None) -> None:
        """Append one layer's phases from its ``LayerResult``.

        ``occupancy`` optionally carries buffer-occupancy samples (name →
        bytes) taken at the layer boundary, exported as counter tracks.
        """
        start = self.cursor
        phase_cycles = {
            "weight_load": result.weight_load_cycles,
            "ifmap_prep": result.ifmap_prep_cycles,
            "psum_move": result.psum_move_cycles,
            "compute": result.compute_cycles,
            "activation_transfer": result.activation_transfer_cycles,
        }
        if occupancy:
            for name, value in occupancy.items():
                self.counters.append(CounterSample(name, start, value))

        cursor = start
        for phase in PHASES:
            cycles = phase_cycles[phase]
            if cycles <= 0:
                continue
            self.events.append(
                TimelineEvent(phase, "on_chip", cursor, cycles, {"layer": result.name})
            )
            cursor += cycles
        if result.dram_cycles > 0:
            self.events.append(
                TimelineEvent(
                    "dram",
                    "dram",
                    start,
                    result.dram_cycles,
                    {"layer": result.name, "bytes": result.dram_traffic_bytes},
                )
            )
        self.events.append(
            TimelineEvent(
                result.name,
                "layer",
                start,
                result.total_cycles,
                {
                    "macs": result.macs,
                    "mappings": result.mappings,
                    "on_chip_cycles": cursor - start,
                    "dram_cycles": result.dram_cycles,
                },
            )
        )
        self.cursor = start + result.total_cycles

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The timeline as a Chrome trace-event JSON object.

        Every event becomes a complete (``ph: "X"``) event whose
        ``ts``/``dur`` are **simulated** microseconds; counter samples
        become ``ph: "C"`` events.  Track names are emitted as thread
        metadata so Perfetto labels the lanes.
        """
        events: List[Dict[str, Any]] = []
        for track, tid in TRACKS.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"sim/{track}"},
                }
            )
        for event in self.events:
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "ts": self.cycles_to_us(event.start_cycle),
                    "dur": self.cycles_to_us(event.duration_cycles),
                    "pid": 1,
                    "tid": TRACKS[event.track],
                    "args": dict(event.args, cycles=event.duration_cycles),
                }
            )
        for sample in self.counters:
            events.append(
                {
                    "name": sample.name,
                    "ph": "C",
                    "ts": self.cycles_to_us(sample.cycle),
                    "pid": 1,
                    "tid": 0,
                    "args": {"value": sample.value},
                }
            )
        trace: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "time_domain": "simulated",
                "clock_ghz": self.frequency_ghz,
                "cycle_ps": self.cycle_ps,
                "total_cycles": self.total_cycles,
                "design": self.design,
                "network": self.network,
            },
        }
        if metadata:
            trace["metadata"] = metadata
        return trace

    def to_chrome_trace_json(
        self,
        metadata: Optional[Dict[str, Any]] = None,
        indent: Optional[int] = None,
    ) -> str:
        return json.dumps(self.to_chrome_trace(metadata), indent=indent)
