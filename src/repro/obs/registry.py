"""``repro.obs.registry`` — a persistent, queryable registry of runs.

PRs 1–2 made a single run observable (metrics, spans, manifests);
nothing persisted *across* runs.  The registry closes that gap: every
CLI invocation appends one schema-versioned JSON entry — run manifest,
metrics snapshot (when observability was on), executed plan hashes,
exit code, wall time — under ``~/.supernpu/runs/`` (overridable with
``--runs-dir`` or ``SUPERNPU_RUNS_DIR``; disable with ``--no-registry``
or ``SUPERNPU_NO_REGISTRY=1``).  ``supernpu runs list|show|diff``
queries the history, so "did this PR change the evaluate numbers /
wall time / cache behavior" is answerable from the recorded trajectory
instead of memory.

Entries are one file each (``<run_id>.json``), written atomically, and
reads are damage-tolerant: an unreadable or wrong-schema entry is
skipped and counted, never fatal — the registry is an observability
surface and must not take down the command it observes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CacheError, ConfigError

#: Bump when the entry layout changes meaning; foreign versions are
#: skipped on read (counted as corrupt), never misinterpreted.
REGISTRY_SCHEMA_VERSION = 1

DEFAULT_RUNS_DIR = "~/.supernpu/runs"
RUNS_DIR_ENV = "SUPERNPU_RUNS_DIR"
NO_REGISTRY_ENV = "SUPERNPU_NO_REGISTRY"


def default_runs_dir() -> Path:
    """The active runs directory: ``$SUPERNPU_RUNS_DIR`` or ``~/.supernpu/runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR).expanduser()


def registry_disabled() -> bool:
    """True when ``SUPERNPU_NO_REGISTRY`` is set to a truthy value."""
    return os.environ.get(NO_REGISTRY_ENV, "") not in ("", "0", "false", "no")


@dataclass
class RunEntry:
    """One recorded invocation."""

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    exit_code: Optional[int] = None
    wall_time_s: Optional[float] = None
    created_unix: float = 0.0
    manifest: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    plans: List[Dict[str, str]] = field(default_factory=list)
    hotspot: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REGISTRY_SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "exit_code": self.exit_code,
            "wall_time_s": self.wall_time_s,
            "created_unix": self.created_unix,
            "manifest": self.manifest,
            "metrics": self.metrics,
            "plans": list(self.plans),
            "hotspot": self.hotspot,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunEntry":
        if not isinstance(data, dict) or data.get("schema") != REGISTRY_SCHEMA_VERSION:
            raise ValueError("not a registry entry (wrong schema)")
        return cls(
            run_id=data["run_id"],
            command=data["command"],
            argv=list(data.get("argv") or []),
            exit_code=data.get("exit_code"),
            wall_time_s=data.get("wall_time_s"),
            created_unix=data.get("created_unix", 0.0),
            manifest=data.get("manifest"),
            metrics=data.get("metrics"),
            plans=list(data.get("plans") or []),
            hotspot=data.get("hotspot"),
        )

    @property
    def counters(self) -> Dict[str, float]:
        """This run's recorded metric counters ({} when obs was off)."""
        if not self.metrics:
            return {}
        return dict(self.metrics.get("counters") or {})

    def describe(self) -> str:
        """A terminal-friendly multi-line rendering of the entry."""
        rows: List[Tuple[str, str]] = [
            ("run", self.run_id),
            ("command", " ".join(self.argv) if self.argv else self.command),
            ("exit code", "?" if self.exit_code is None else str(self.exit_code)),
        ]
        if self.wall_time_s is not None:
            rows.append(("wall time", f"{self.wall_time_s:.3f} s"))
        rows.append(("recorded", time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.created_unix))))
        for manifest_key in ("design", "workload", "batch", "technology",
                             "plan", "plan_hash"):
            value = (self.manifest or {}).get(manifest_key)
            if value is not None:
                rows.append((manifest_key, str(value)))
        if self.plans:
            rows.append(("plans", ", ".join(
                f"{p['name']} ({p['hash'][:12]})" for p in self.plans)))
        if self.hotspot:
            top = self.hotspot.get("top") or []
            label = (f"{top[0]['function']} ({top[0]['file']}:{top[0]['line']}, "
                     f"{top[0]['self_s'] * 1e3:.3f} ms self)") if top else "-"
            rows.append(("hotspot", f"{self.hotspot.get('mode')} mode, "
                                    f"top: {label}"))
        lines = [f"  {k:12s}: {v}" for k, v in rows]
        counters = self.counters
        if counters:
            lines.append("  counters    :")
            for name in sorted(counters):
                lines.append(f"    {name:32s} {counters[name]:>16,}")
        return "\n".join(lines)


def _new_run_id(sequence: int = 0) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    base = f"{stamp}-{os.getpid()}-{os.urandom(3).hex()}"
    return base if sequence == 0 else f"{base}-{sequence}"


class RunRegistry:
    """Append-only store of :class:`RunEntry` files in one directory."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_runs_dir()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cannot create runs directory {self.root}: {error}",
                code="registry.unwritable",
                hint="pick a writable --runs-dir (or set SUPERNPU_RUNS_DIR)",
                path=str(self.root),
            ) from error

    def path_for(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    # -- writing -------------------------------------------------------
    def _reserve_run_id(self) -> Tuple[str, Path]:
        """Atomically allocate a run id nobody else holds.

        Creating the entry file with ``O_CREAT | O_EXCL`` is the
        allocation: the filesystem arbitrates between concurrent
        writers (the serve daemon records one entry per request, many
        in the same second from the same pid), so two racing
        ``append()`` calls can never agree on a name and overwrite
        each other.  Collisions retry with a sequence suffix.
        """
        for sequence in range(64):
            run_id = _new_run_id(sequence)
            path = self.path_for(run_id)
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError as error:
                raise CacheError(
                    f"cannot reserve run entry {run_id}: {error}",
                    code="registry.write_failed", path=str(path),
                ) from error
            os.close(handle)
            return run_id, path
        raise CacheError(
            "could not allocate a unique run id after 64 attempts",
            code="registry.write_failed", path=str(self.root),
        )

    def append(self, command: str,
               argv: Optional[Sequence[str]] = None,
               exit_code: Optional[int] = None,
               wall_time_s: Optional[float] = None,
               manifest: Optional[Dict[str, Any]] = None,
               metrics: Optional[Dict[str, Any]] = None,
               plans: Optional[Sequence[Dict[str, str]]] = None,
               hotspot: Optional[Dict[str, Any]] = None) -> RunEntry:
        """Record one invocation; returns the written entry."""
        run_id, path = self._reserve_run_id()
        entry = RunEntry(
            run_id=run_id,
            command=command,
            argv=list(argv or []),
            exit_code=exit_code,
            wall_time_s=wall_time_s,
            created_unix=time.time(),
            manifest=manifest,
            metrics=metrics,
            plans=list(plans or []),
            hotspot=hotspot,
        )
        # The reservation holds the name; content still lands through
        # tmp + replace so a reader never observes a torn entry.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(entry.to_dict(), sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError as error:
            for leftover in (tmp, path):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            raise CacheError(
                f"failed to record run {entry.run_id}: {error}",
                code="registry.write_failed",
                hint="check free space and permissions on the runs directory",
                path=str(path),
            ) from error
        return entry

    # -- reading -------------------------------------------------------
    def entries(self, limit: Optional[int] = None,
                command: Optional[str] = None) -> Tuple[List[RunEntry], int]:
        """(newest-first entries, skipped-corrupt count).

        ``command`` filters to entries whose command name or full argv
        contains the substring (case-insensitive) — applied *before*
        ``limit``, so "the last 5 evaluate runs" composes naturally.
        Damaged files — torn writes, truncated JSON, foreign schemas —
        are skipped and counted, so one bad entry never blocks history.
        """
        loaded: List[RunEntry] = []
        corrupt = 0
        for path in self.root.glob("*.json"):
            try:
                loaded.append(RunEntry.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))))
            except (OSError, ValueError, KeyError, TypeError):
                corrupt += 1
        if command:
            needle = command.lower()
            loaded = [
                e for e in loaded
                if needle in e.command.lower()
                or needle in " ".join(e.argv).lower()
            ]
        loaded.sort(key=lambda e: (e.created_unix, e.run_id), reverse=True)
        if limit is not None:
            loaded = loaded[:limit]
        return loaded, corrupt

    def get(self, run_id: str) -> RunEntry:
        """One entry by exact id or unique prefix (``ConfigError`` otherwise)."""
        path = self.path_for(run_id)
        if path.is_file():
            try:
                return RunEntry.from_dict(
                    json.loads(path.read_text(encoding="utf-8")))
            except (OSError, ValueError, KeyError, TypeError) as error:
                raise ConfigError(
                    f"run entry {run_id} is unreadable: {error}",
                    code="registry.corrupt_entry", run_id=run_id,
                ) from error
        entries, _ = self.entries()
        matches = [e for e in entries if e.run_id.startswith(run_id)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ConfigError(
                f"no recorded run matches {run_id!r}",
                code="registry.unknown_run",
                hint="see 'supernpu runs list'", run_id=run_id,
            )
        raise ConfigError(
            f"{len(matches)} recorded runs match {run_id!r}; be more specific",
            code="registry.ambiguous_run",
            hint="; ".join(e.run_id for e in matches[:5]), run_id=run_id,
        )

    # -- comparison ----------------------------------------------------
    def diff(self, a: str, b: str) -> Dict[str, Any]:
        """Structured difference between two recorded runs.

        Covers identity fields (command/design/workload/plan), wall
        time, and every metric counter present in either run.
        """
        first, second = self.get(a), self.get(b)
        fields: Dict[str, Dict[str, Any]] = {}
        for name in ("command", "exit_code"):
            va, vb = getattr(first, name), getattr(second, name)
            if va != vb:
                fields[name] = {"a": va, "b": vb}
        for name in ("design", "workload", "batch", "technology",
                     "plan", "plan_hash", "package_version"):
            va = (first.manifest or {}).get(name)
            vb = (second.manifest or {}).get(name)
            if va != vb:
                fields[name] = {"a": va, "b": vb}
        counters: Dict[str, Dict[str, float]] = {}
        ca, cb = first.counters, second.counters
        for name in sorted(set(ca) | set(cb)):
            va, vb = ca.get(name, 0), cb.get(name, 0)
            if va != vb:
                counters[name] = {"a": va, "b": vb, "delta": vb - va}
        wall = None
        if first.wall_time_s is not None and second.wall_time_s is not None:
            wall = second.wall_time_s - first.wall_time_s
        return {
            "a": first.run_id,
            "b": second.run_id,
            "fields": fields,
            "counters": counters,
            "wall_time_delta_s": wall,
        }


# -- per-invocation staging -------------------------------------------------
#
# The CLI's observability session (repro.cli._ObsSession) knows the run's
# manifest and metrics snapshot just before it resets the global registry;
# the CLI main() knows the exit code and wall time just after.  The staging
# dict carries the former to the latter without coupling their lifetimes.

_STAGED: Dict[str, Any] = {}


def stage(**fields: Any) -> None:
    """Contribute manifest/metrics for the in-flight invocation."""
    _STAGED.update(fields)


def take_staged() -> Dict[str, Any]:
    """Drain the staged fields (empties the staging area)."""
    drained = dict(_STAGED)
    _STAGED.clear()
    return drained


def record_invocation(command: str,
                      argv: Sequence[str],
                      exit_code: Optional[int],
                      wall_time_s: float,
                      runs_dir: Optional[Union[str, Path]] = None,
                      plans: Optional[Sequence[Dict[str, str]]] = None,
                      ) -> Optional[RunEntry]:
    """Best-effort append of one CLI invocation (never raises).

    The registry observes commands; a full disk or read-only home
    directory must not turn a successful ``supernpu evaluate`` into a
    failure, so every error here is swallowed and ``None`` returned.
    """
    if registry_disabled():
        take_staged()
        return None
    staged = take_staged()
    try:
        registry = RunRegistry(runs_dir)
        return registry.append(
            command=command,
            argv=argv,
            exit_code=exit_code,
            wall_time_s=wall_time_s,
            manifest=staged.get("manifest"),
            metrics=staged.get("metrics"),
            plans=plans,
            hotspot=staged.get("hotspot"),
        )
    except Exception:
        return None
