"""RSFQ / ERSFQ logic cell library.

The architecture model consumes gate-level parameters exactly as the paper's
SFQ-NPU estimator does (Fig. 10): per-cell timing (delay / SetupTime /
HoldTime), power (static power, dynamic switching energy) and area (JJ
count).  The paper extracts these with JSIM from the AIST 1.0 um RSFQ cell
library; we ship a parametric library whose values are calibrated against
every number the paper publishes:

* AND: 8.3 ps delay, 3.6 uW static, 1.4 aJ/switch (Fig. 10 table)
* XOR: 6.5 ps delay, 3.0 uW static, 1.4 aJ/switch (Fig. 10 table)
* shift register: 133 GHz concurrent-flow, 71 GHz counter-flow (Fig. 7c)
* full adder (accumulator loop): 66 GHz concurrent, 30 GHz counter (Fig. 7c)
* full NPU: 52.6 GHz (Table I)
* RSFQ-SuperNPU static power ~964 W, ERSFQ dynamic ~1.9 W (Table III)

ERSFQ parameters are derived from RSFQ per Section IV-A1: identical timing
and area, zero static power, and 2x dynamic energy (bias JJs double the
number of switching junctions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Mapping

from repro.device.process import AIST_10UM, FabricationProcess


class Technology(enum.Enum):
    """SFQ biasing technology (Section IV-A1)."""

    RSFQ = "rsfq"
    ERSFQ = "ersfq"


# Canonical cell names used across the microarchitecture models.
DFF = "DFF"
SRCELL = "SRCELL"  # dense shift-register bit with built-in clock coupling
DFF_BYPASS = "DFFB"  # bypassable DFF used by the data alignment unit
NDRO = "NDRO"  # non-destructive readout register bit (weight registers)
AND = "AND"
OR = "OR"
XOR = "XOR"
NOT = "NOT"
TFF = "TFF"
SPLITTER = "SPL"
MERGER = "MRG"
JTL = "JTL"
MUX = "MUX"
DEMUX = "DEMUX"

#: Cells that are purely combinational wire elements (no clock input).
UNCLOCKED_CELLS = frozenset({SPLITTER, MERGER, JTL})

#: Clocked cells whose JJ count already includes their clock-distribution
#: coupling (the shift-register bit cell chains its clock like a JTL ladder),
#: so the estimator must not charge an extra clock-tree splitter for them.
CLOCK_SELF_CONTAINED_CELLS = frozenset({SRCELL})


@dataclass(frozen=True)
class SFQCell:
    """One logic cell of the library.

    Attributes:
        name: Canonical cell name (one of the module-level constants).
        jj_count: Number of Josephson junctions in the cell (drives area).
        delay_ps: Clock-to-output propagation delay (data delay for
            unclocked wire cells such as JTL / splitter).
        setup_ps: SetupTime; 0 for unclocked cells.
        hold_ps: HoldTime; 0 for unclocked cells.
        static_power_uw: DC bias dissipation (RSFQ); 0 under ERSFQ.
        switch_energy_aj: Average dynamic energy per clocked operation,
            averaged over input states (the paper's "access energy").
    """

    name: str
    jj_count: int
    delay_ps: float
    setup_ps: float
    hold_ps: float
    static_power_uw: float
    switch_energy_aj: float

    @property
    def is_clocked(self) -> bool:
        return self.name not in UNCLOCKED_CELLS

    def area_um2(self, process: FabricationProcess) -> float:
        """Layout area of the cell on ``process`` in um^2."""
        return self.jj_count * process.jj_area_um2


# Calibrated RSFQ cell parameters for the AIST 1.0 um process.  The AND and
# XOR rows are the published values; the remaining cells are set consistently
# with typical RSFQ cell libraries and with the circuit-level calibration
# targets listed in the module docstring.
_RSFQ_CELLS: Dict[str, SFQCell] = {
    cell.name: cell
    for cell in (
        SFQCell(DFF, jj_count=6, delay_ps=3.3, setup_ps=3.5, hold_ps=4.0,
                static_power_uw=2.2, switch_energy_aj=0.8),
        SFQCell(SRCELL, jj_count=5, delay_ps=3.3, setup_ps=3.5, hold_ps=4.0,
                static_power_uw=2.05, switch_energy_aj=0.6),
        SFQCell(DFF_BYPASS, jj_count=9, delay_ps=3.6, setup_ps=3.7, hold_ps=4.2,
                static_power_uw=2.6, switch_energy_aj=1.0),
        SFQCell(NDRO, jj_count=11, delay_ps=4.0, setup_ps=4.0, hold_ps=5.0,
                static_power_uw=3.2, switch_energy_aj=1.2),
        SFQCell(AND, jj_count=11, delay_ps=8.3, setup_ps=6.0, hold_ps=9.0,
                static_power_uw=3.6, switch_energy_aj=1.4),
        SFQCell(OR, jj_count=12, delay_ps=7.0, setup_ps=5.5, hold_ps=7.5,
                static_power_uw=3.2, switch_energy_aj=1.5),
        SFQCell(XOR, jj_count=11, delay_ps=6.5, setup_ps=5.0, hold_ps=7.0,
                static_power_uw=3.0, switch_energy_aj=1.4),
        SFQCell(NOT, jj_count=10, delay_ps=7.5, setup_ps=5.5, hold_ps=8.0,
                static_power_uw=3.1, switch_energy_aj=1.3),
        SFQCell(TFF, jj_count=12, delay_ps=4.5, setup_ps=4.0, hold_ps=5.0,
                static_power_uw=3.3, switch_energy_aj=1.3),
        SFQCell(SPLITTER, jj_count=3, delay_ps=2.0, setup_ps=0.0, hold_ps=0.0,
                static_power_uw=1.0, switch_energy_aj=0.45),
        SFQCell(MERGER, jj_count=7, delay_ps=3.0, setup_ps=0.0, hold_ps=0.0,
                static_power_uw=2.0, switch_energy_aj=0.9),
        SFQCell(JTL, jj_count=2, delay_ps=1.6, setup_ps=0.0, hold_ps=0.0,
                static_power_uw=0.7, switch_energy_aj=0.3),
        SFQCell(MUX, jj_count=16, delay_ps=5.0, setup_ps=4.5, hold_ps=6.0,
                static_power_uw=4.4, switch_energy_aj=1.7),
        SFQCell(DEMUX, jj_count=16, delay_ps=5.0, setup_ps=4.5, hold_ps=6.0,
                static_power_uw=4.4, switch_energy_aj=1.7),
    )
}

#: ERSFQ dynamic energy multiplier relative to RSFQ (Section IV-A1).
ERSFQ_ENERGY_FACTOR = 2.0


class CellLibrary:
    """A complete SFQ cell library bound to a fabrication process."""

    def __init__(
        self,
        technology: Technology,
        process: FabricationProcess = AIST_10UM,
        cells: Mapping[str, SFQCell] | None = None,
    ) -> None:
        self.technology = technology
        self.process = process
        base = dict(cells) if cells is not None else dict(_RSFQ_CELLS)
        if technology is Technology.ERSFQ and cells is None:
            base = {name: _to_ersfq(cell) for name, cell in base.items()}
        self._cells = base

    def __getitem__(self, name: str) -> SFQCell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"unknown SFQ cell {name!r}; known: {sorted(self._cells)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterable[str]:
        return iter(self._cells)

    @property
    def names(self) -> tuple:
        return tuple(sorted(self._cells))

    def cell_area_um2(self, name: str) -> float:
        return self[name].area_um2(self.process)

    def total_area_um2(self, gate_counts: Mapping[str, float]) -> float:
        """Area of a gate-count histogram (um^2)."""
        return sum(self[name].jj_count * count for name, count in gate_counts.items()) * self.process.jj_area_um2

    def total_jj_count(self, gate_counts: Mapping[str, float]) -> float:
        return sum(self[name].jj_count * count for name, count in gate_counts.items())

    def static_power_w(self, gate_counts: Mapping[str, float]) -> float:
        """Static power of a gate-count histogram in watts."""
        return sum(self[name].static_power_uw * count for name, count in gate_counts.items()) * 1e-6

    def access_energy_j(self, gate_counts: Mapping[str, float]) -> float:
        """Dynamic energy of one clocked operation of every gate (joules)."""
        return sum(self[name].switch_energy_aj * count for name, count in gate_counts.items()) * 1e-18

    def access_energy_split_j(self, gate_counts: Mapping[str, float]) -> "tuple[float, float]":
        """(clocked, wire) dynamic energy per fully-active cycle, in joules.

        Clocked gates dissipate on every clock pulse they receive regardless
        of data (the clock pulse itself switches junctions), whereas wire
        cells (splitters, mergers, JTLs) only switch when a data pulse
        passes — the simulator scales the wire share by the data activity.
        """
        clocked = 0.0
        wire = 0.0
        for name, count in gate_counts.items():
            energy = self[name].switch_energy_aj * count
            if name in UNCLOCKED_CELLS:
                wire += energy
            else:
                clocked += energy
        return clocked * 1e-18, wire * 1e-18

    def with_process(self, process: FabricationProcess) -> "CellLibrary":
        return CellLibrary(self.technology, process, self._cells)


def _to_ersfq(cell: SFQCell) -> SFQCell:
    """Derive the ERSFQ variant of an RSFQ cell (Section IV-A1)."""
    return replace(
        cell,
        static_power_uw=0.0,
        switch_energy_aj=cell.switch_energy_aj * ERSFQ_ENERGY_FACTOR,
    )


def rsfq_library(process: FabricationProcess = AIST_10UM) -> CellLibrary:
    """The calibrated RSFQ library on the given process (default AIST 1.0 um)."""
    return CellLibrary(Technology.RSFQ, process)


def ersfq_library(process: FabricationProcess = AIST_10UM) -> CellLibrary:
    """The derived ERSFQ library: zero static power, 2x switching energy."""
    return CellLibrary(Technology.ERSFQ, process)


def library_for(technology: Technology, process: FabricationProcess = AIST_10UM) -> CellLibrary:
    if technology is Technology.RSFQ:
        return rsfq_library(process)
    return ersfq_library(process)
