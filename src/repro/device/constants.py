"""Physical constants for superconducting single-flux-quantum (SFQ) logic.

The unit system used throughout :mod:`repro` is chosen so that circuit-level
quantities have convenient magnitudes:

* time        — picoseconds (ps)
* voltage     — millivolts (mV)
* current     — microamperes (uA)
* inductance  — picohenries (pH)
* resistance  — ohms (mV / uA = kOhm? no: mV/uA = kOhm/1000 = Ohm)  -> ohms
* energy      — attojoules (aJ) at the gate level, joules at chip level
* power       — microwatts (uW) at the gate level, watts at chip level

With these units the magnetic flux quantum is ``PHI0_MV_PS`` mV*ps, and
``mV * uA = nW`` while ``mV * uA * ps = 1e-21 J = zJ``.
"""

from __future__ import annotations

import math

#: Magnetic flux quantum h/2e in webers (V*s).
PHI0_WB = 2.067833848e-15

#: Magnetic flux quantum expressed in mV*ps (the simulator unit system).
#: 2.0678e-15 V*s = 2.0678e-15 * 1e3 mV * 1e12 ps.
PHI0_MV_PS = PHI0_WB * 1e3 * 1e12

#: Reduced flux quantum Phi0 / (2*pi) in mV*ps.
PHI0_BAR_MV_PS = PHI0_MV_PS / (2.0 * math.pi)

#: Boltzmann constant in J/K.
KB_J_PER_K = 1.380649e-23

#: Typical liquid-helium operating temperature for SFQ logic (kelvin).
OPERATING_TEMPERATURE_K = 4.2

#: Energy of a single JJ switching event: Ic * Phi0, for Ic in uA the
#: result of ``ic_ua * JJ_SWITCH_ENERGY_AJ_PER_UA`` is in attojoules.
#: Ic[uA] * Phi0[Wb] = Ic*1e-6 A * 2.0678e-15 V*s = Ic * 2.0678e-21 J.
JJ_SWITCH_ENERGY_AJ_PER_UA = PHI0_WB * 1e-6 * 1e18


def jj_switch_energy_aj(critical_current_ua: float) -> float:
    """Energy dissipated by one JJ 2*pi phase slip, in attojoules.

    The canonical SFQ switching energy is ``Ic * Phi0`` (Likharev & Semenov,
    1991).  For a 70 uA junction this is ~0.145 aJ, which is why multi-JJ
    logic gates land in the 1-2 aJ/operation range quoted by the paper.
    """
    return critical_current_ua * JJ_SWITCH_ENERGY_AJ_PER_UA


def thermal_energy_aj(temperature_k: float = OPERATING_TEMPERATURE_K) -> float:
    """Thermal energy k_B * T in attojoules (sanity floor for bit energies)."""
    return KB_J_PER_K * temperature_k * 1e18
