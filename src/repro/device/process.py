"""Fabrication process descriptions for SFQ circuits.

The paper evaluates everything on the AIST 1.0 um Nb 9-layer process
("AIST 1.0 um fabrication process technology", Nagasawa et al. 2014) and,
for the area comparison against the 28 nm TPU, applies an equivalent
feature-size scaling (Table I reports area "(28nm)").

:class:`FabricationProcess` captures the handful of device parameters the
architecture model consumes: feature size, critical current / bias levels,
and the effective layout area per Josephson junction (which already folds in
wiring, bias resistors and the cell-internal inductors of a standard-cell
style RSFQ layout).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.device.constants import jj_switch_energy_aj


@dataclass(frozen=True)
class FabricationProcess:
    """A superconducting fabrication process.

    Attributes:
        name: Human-readable process name.
        feature_size_um: Minimum JJ feature size in micrometers.
        critical_current_density_ka_cm2: Jc of the junction layer.
        jj_area_um2: Effective layout area per JJ including cell overhead.
            Calibrated so that the Table I chip areas are reproduced
            (Baseline ~283 mm2 and SuperNPU ~299 mm2 when scaled to 28 nm).
        bias_voltage_mv: DC bias rail voltage (RSFQ resistor biasing).
        bias_current_ua: Average DC bias current per JJ.
        max_frequency_scaling_um: Feature size below which the linear
            frequency-vs-feature scaling rule no longer holds (Kadin et al.
            observe scaling down to ~0.2 um).
    """

    name: str
    feature_size_um: float
    critical_current_density_ka_cm2: float
    jj_area_um2: float
    bias_voltage_mv: float = 2.5
    bias_current_ua: float = 70.0
    max_frequency_scaling_um: float = 0.2

    @property
    def jj_static_power_uw(self) -> float:
        """Static power of one resistor-biased JJ: V_bias * I_bias (uW).

        2.5 mV * 70 uA = 175 nW = 0.175 uW, matching Section VI-C of the
        paper.  Gate-level static powers in the cell library additionally
        include the bias-network overhead, so they are calibrated directly
        against the published per-gate values rather than derived from this.
        """
        return self.bias_voltage_mv * self.bias_current_ua * 1e-3

    @property
    def jj_switch_energy_aj(self) -> float:
        """Energy of a single junction switching event (aJ)."""
        return jj_switch_energy_aj(self.bias_current_ua)

    def area_scale_factor(self, target_feature_um: float) -> float:
        """Multiplier applied to layout area when scaled to another node.

        Area scales quadratically with feature size; this is the convention
        the paper uses to report "(28nm)" areas in Table I.
        """
        if target_feature_um <= 0:
            raise ValueError("target feature size must be positive")
        return (target_feature_um / self.feature_size_um) ** 2

    def frequency_scale_factor(self, target_feature_um: float) -> float:
        """Frequency gain when the process is scaled to a smaller node.

        Follows the linear scaling rule (frequency proportional to the
        reduction rate of the junction) reported by Kadin et al., clamped at
        ``max_frequency_scaling_um`` below which the rule is not validated.
        """
        if target_feature_um <= 0:
            raise ValueError("target feature size must be positive")
        effective = max(target_feature_um, self.max_frequency_scaling_um)
        return self.feature_size_um / effective

    def scaled(self, target_feature_um: float, name: str | None = None) -> "FabricationProcess":
        """Return a hypothetical process shrunk to ``target_feature_um``."""
        factor = self.area_scale_factor(target_feature_um)
        return replace(
            self,
            name=name or f"{self.name}-scaled-{target_feature_um}um",
            feature_size_um=target_feature_um,
            jj_area_um2=self.jj_area_um2 * factor,
        )


#: The AIST 1.0 um Nb 9-layer process used throughout the paper.
#: ``jj_area_um2`` is calibrated against Table I (see module docstring).
AIST_10UM = FabricationProcess(
    name="AIST-Nb-1.0um",
    feature_size_um=1.0,
    critical_current_density_ka_cm2=10.0,
    jj_area_um2=156.0,
)

#: Feature size of the CMOS process used by the TPU comparison (28 nm).
CMOS_28NM_UM = 0.028
